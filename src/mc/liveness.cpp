#include "mc/liveness.h"

#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::mc {

namespace {

/// The zone graph with exact-equality interning: liveness needs the full
/// successor structure, so subsumption is off and states dedup on
/// (discrete, zone) identity via the exploration core's exact policy.
struct Graph {
  core::StateStore<ta::SymState> store;
  std::vector<std::vector<std::int32_t>> succ;

  std::size_t size() const { return store.size(); }
  const ta::SymState& state(std::size_t i) const {
    return store.state(static_cast<std::int32_t>(i));
  }
};

Graph build_zone_graph(const ta::SymbolicSemantics& sem,
                       const ReachOptions& opts, SearchStats& stats) {
  Graph g;
  core::Worklist work(core::SearchOrder::kDfs);

  auto intern = [&](ta::SymState s) -> std::int32_t {
    auto [id, inserted] = g.store.intern(std::move(s));
    if (inserted) {
      g.succ.emplace_back();
      work.push(id);
      if (opts.observer != nullptr) {
        opts.observer->on_state_stored(id, g.store.size());
      }
    }
    return id;
  };

  intern(sem.initial());
  stats = core::explore(
      g.store, work, opts.limits,
      [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::SymState state = g.store.state(e.id);
        std::vector<std::int32_t> next;
        for (auto& tr : sem.successors(state)) {
          next.push_back(intern(std::move(tr.state)));
        }
        const std::size_t taken = next.size();
        g.succ[static_cast<std::size_t>(e.id)] = std::move(next);
        return taken;
      },
      opts.observer);
  return g;
}

/// Iterative detection of a cycle or dead-end inside the non-psi subgraph
/// restricted to nodes reachable from `roots`. Returns a reason string, or
/// empty if the obligation holds.
std::string find_violation(const Graph& g, const std::vector<bool>& is_psi,
                           const std::vector<int>& roots) {
  const int n = static_cast<int>(g.size());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> color(static_cast<std::size_t>(n), 0);
  struct Frame {
    int node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  for (int root : roots) {
    if (is_psi[static_cast<std::size_t>(root)]) continue;  // discharged at once
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    stack.push_back(Frame{root, 0});
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = g.succ[static_cast<std::size_t>(f.node)];
      if (succ.empty()) {
        return "non-psi state with no successors (stuck run)";
      }
      if (f.next_child == succ.size()) {
        color[static_cast<std::size_t>(f.node)] = 2;
        stack.pop_back();
        continue;
      }
      int child = succ[f.next_child++];
      if (is_psi[static_cast<std::size_t>(child)]) continue;  // obligation met
      char& c = color[static_cast<std::size_t>(child)];
      if (c == 1) {
        return "cycle of non-psi states (psi can be avoided forever)";
      }
      if (c == 0) {
        c = 1;
        stack.push_back(Frame{child, 0});
      }
    }
  }
  return {};
}

}  // namespace

LeadsToResult check_leads_to(const ta::System& sys, const StatePredicate& phi,
                             const StatePredicate& psi,
                             const ReachOptions& opts) {
  opts.limits.validate("mc.liveness");
  return common::governed(
      [&] {
        ta::SymbolicSemantics sem(
            sys, ta::SymbolicSemantics::Options{opts.extrapolate});
        LeadsToResult result;
        Graph g = build_zone_graph(sem, opts, result.stats);
        if (result.stats.truncated) {
          // Unexpanded frontier states would read as stuck runs; a truncated
          // graph supports no verdict at all.
          result.verdict = common::Verdict::kUnknown;
          result.reason = std::string("state space truncated (") +
                          common::to_string(result.stats.stop) + ")";
          return result;
        }
        std::vector<bool> is_psi(g.size());
        std::vector<int> roots;
        for (std::size_t i = 0; i < g.size(); ++i) {
          is_psi[i] = psi(g.state(i));
          if (!is_psi[i] && phi(g.state(i))) {
            roots.push_back(static_cast<int>(i));
          }
        }
        result.reason = find_violation(g, is_psi, roots);
        result.verdict = result.reason.empty() ? common::Verdict::kHolds
                                               : common::Verdict::kViolated;
        return result;
      },
      [](common::StopReason r) {
        LeadsToResult result;
        result.stats.stop_for(r);
        result.reason = std::string("analysis aborted (") +
                        common::to_string(r) + ")";
        return result;
      });
}

LeadsToResult check_eventually(const ta::System& sys,
                               const StatePredicate& psi,
                               const ReachOptions& opts) {
  // A<> psi == (initial --> psi): only the initial state seeds the search.
  ta::SymbolicSemantics sem(sys, ta::SymbolicSemantics::Options{opts.extrapolate});
  ta::SymState init = sem.initial();
  StatePredicate initial_only = [init](const ta::SymState& s) {
    return s.same_discrete(init) && s.zone == init.zone;
  };
  return check_leads_to(sys, initial_only, psi, opts);
}

PossiblyAlwaysResult check_possibly_always(const ta::System& sys,
                                           const StatePredicate& psi,
                                           const ReachOptions& opts) {
  LeadsToResult dual = check_eventually(sys, pred_not(psi), opts);
  PossiblyAlwaysResult result;
  result.stats = dual.stats;
  result.verdict = common::negate(dual.verdict);
  return result;
}

}  // namespace quanta::mc
