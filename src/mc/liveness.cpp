#include "mc/liveness.h"

#include <optional>

#include "ckpt/delta.h"
#include "ckpt/snapshot_core.h"
#include "ckpt/snapshot_ta.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::mc {

namespace {

/// The zone graph with exact-equality interning: liveness needs the full
/// successor structure, so subsumption is off and states dedup on
/// (discrete, zone) identity via the exploration core's exact policy.
struct Graph {
  core::StateStore<ta::SymState> store;
  std::vector<std::vector<std::int32_t>> succ;

  std::size_t size() const { return store.size(); }
  /// By value: the pooled store materializes states on demand.
  ta::SymState state(std::size_t i) const {
    return store.state(static_cast<std::int32_t>(i));
  }
};

/// Builds the zone graph under Provider::kLiveness checkpointing. The
/// resumable state is the exact store, the DFS worklist and the successor
/// lists in *expansion order* (an append-only journal — each expansion
/// assigns exactly one node's list, so a delta carries just the journal
/// suffix). Once the build completes, the whole graph is saved with an
/// empty worklist: resuming that snapshot skips construction entirely and
/// the violation search — a pure function of the complete graph — reruns.
class GraphBuilder {
 public:
  GraphBuilder(const ta::SymbolicSemantics& sem, const StatePredicate& phi,
               const StatePredicate& psi, const ReachOptions& opts)
      : sem_(sem), opts_(opts), work_(core::SearchOrder::kDfs) {
    ckpt::Fingerprint fp;
    fp.mix(0x4C454144u)  // "LEAD"
        .mix(ckpt::fingerprint(sem.system()))
        .mix(opts.extrapolate ? 1u : 0u)
        .mix_str(phi.canonical())
        .mix_str(psi.canonical());
    fp_ = fp.digest();
    if (opts_.checkpoint.enabled()) {
      chain_.emplace(opts_.checkpoint.path, ckpt::Provider::kLiveness, fp_,
                     opts_.checkpoint.max_deltas);
    }
  }

  std::uint64_t fingerprint() const { return fp_; }
  Graph& graph() { return g_; }

  bool restore_from(const ckpt::Chain& chain) {
    const ckpt::Section* sec_store = chain.base.find(ckpt::kSecStore);
    const ckpt::Section* sec_work = chain.base.find(ckpt::kSecWorklist);
    const ckpt::Section* sec_stats = chain.base.find(ckpt::kSecSearchStats);
    const ckpt::Section* sec_payload = chain.base.find(ckpt::kSecEnginePayload);
    if (sec_store == nullptr || sec_work == nullptr || sec_stats == nullptr ||
        sec_payload == nullptr) {
      return false;
    }
    std::vector<ta::SymState> states;
    std::vector<std::uint8_t> covered;
    {
      ckpt::io::Reader r(sec_store->payload);
      if (!ckpt::read_store_vectors<ta::SymState>(
              r, g_.store.options().inclusion,
              g_.store.options().tombstone_covered, ckpt::read_sym_state,
              &states, &covered)) {
        return false;
      }
    }
    std::vector<core::Worklist::Entry> entries;
    {
      ckpt::io::Reader r(sec_work->payload);
      if (!ckpt::read_worklist_entries(r, core::SearchOrder::kDfs, &entries)) {
        return false;
      }
    }
    std::uint64_t explored = 0;
    std::uint64_t transitions = 0;
    {
      ckpt::io::Reader r(sec_stats->payload);
      if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
    }
    std::vector<std::vector<std::int32_t>> succ(states.size());
    std::vector<std::int32_t> journal;
    if (!read_succ_journal(sec_payload->payload, /*delta=*/false, &succ,
                           &journal)) {
      return false;
    }

    std::uint64_t journal_len = 0;
    for (std::uint8_t c : covered) journal_len += c != 0 ? 1 : 0;
    for (const ckpt::Delta& d : chain.deltas) {
      const ckpt::Section* d_store = d.find(ckpt::kSecStoreDelta);
      const ckpt::Section* d_work = d.find(ckpt::kSecWorklistDelta);
      const ckpt::Section* d_stats = d.find(ckpt::kSecSearchStats);
      const ckpt::Section* d_payload = d.find(ckpt::kSecEnginePayload);
      if (d_store == nullptr || d_work == nullptr || d_stats == nullptr ||
          d_payload == nullptr) {
        return false;
      }
      {
        ckpt::io::Reader r(d_store->payload);
        if (!ckpt::apply_store_delta<ta::SymState>(
                r, ckpt::read_sym_state, &states, &covered, &journal_len)) {
          return false;
        }
      }
      succ.resize(states.size());
      {
        ckpt::io::Reader r(d_work->payload);
        if (!ckpt::apply_worklist_delta(r, &entries)) return false;
      }
      {
        ckpt::io::Reader r(d_stats->payload);
        if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
      }
      if (!read_succ_journal(d_payload->payload, /*delta=*/true, &succ,
                             &journal)) {
        return false;
      }
    }

    prev_entries_ = entries;
    g_.store = core::StateStore<ta::SymState>::restore(
        g_.store.options(), std::move(states), std::move(covered));
    g_.succ = std::move(succ);
    expand_journal_ = std::move(journal);
    work_.restore(std::move(entries));
    baseline_explored_ = explored;
    baseline_transitions_ = transitions;
    saved_states_ = g_.store.size();
    saved_expanded_ = expand_journal_.size();
    if (chain_.has_value()) chain_->adopt(chain);
    return true;
  }

  /// `pending` is the popped-but-unexpanded entry of an interrupted build
  /// (re-queued at the back, DFS pops next), or nullptr for the complete-
  /// graph snapshot written after the build finishes.
  bool save_snapshot(std::uint64_t explored, std::uint64_t transitions,
                     const core::Worklist::Entry* pending) {
    if (!chain_.has_value()) return false;
    std::vector<core::Worklist::Entry> cur = work_.snapshot();
    if (pending != nullptr) cur.push_back(*pending);

    bool ok;
    if (chain_->want_base()) {
      ckpt::Snapshot snap;
      {
        ckpt::io::Writer w;
        ckpt::write_store(w, g_.store, ckpt::write_sym_state);
        snap.add_section(ckpt::kSecStore, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist(w, work_, nullptr, pending);
        snap.add_section(ckpt::kSecWorklist, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        snap.add_section(ckpt::kSecSearchStats, std::move(w));
      }
      {
        ckpt::io::Writer w;
        write_succ_journal(w, 0);
        snap.add_section(ckpt::kSecEnginePayload, std::move(w));
      }
      ok = chain_->save_base(std::move(snap));
    } else {
      std::vector<ckpt::Section> secs;
      {
        ckpt::io::Writer w;
        ckpt::write_store_delta(w, g_.store, saved_states_,
                                /*base_journal=*/0, ckpt::write_sym_state);
        secs.push_back(ckpt::Section{ckpt::kSecStoreDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist_delta(w, prev_entries_, cur);
        secs.push_back(ckpt::Section{ckpt::kSecWorklistDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        secs.push_back(ckpt::Section{ckpt::kSecSearchStats, w.take()});
      }
      {
        ckpt::io::Writer w;
        write_succ_journal(w, saved_expanded_);
        secs.push_back(ckpt::Section{ckpt::kSecEnginePayload, w.take()});
      }
      ok = chain_->save_delta_link(std::move(secs));
    }
    if (ok) {
      saved_states_ = g_.store.size();
      saved_expanded_ = expand_journal_.size();
      prev_entries_ = std::move(cur);
    }
    return ok;
  }

  SearchStats build(bool resumed, ckpt::ResumeInfo* resume) {
    if (!resumed) intern(sem_.initial());
    core::CheckpointHook hook;
    const core::CheckpointHook* hook_ptr = nullptr;
    const std::uint64_t interval = opts_.checkpoint.effective_interval();
    if (chain_.has_value() &&
        (opts_.checkpoint.save_on_stop || interval != 0)) {
      hook.interval = interval;
      hook.sink = [this, resume](const SearchStats& s,
                                 const core::Worklist::Entry& pending) {
        if (s.stop != common::StopReason::kCompleted &&
            !opts_.checkpoint.save_on_stop) {
          return;
        }
        const bool ok =
            save_snapshot(baseline_explored_ + s.states_explored - 1,
                          baseline_transitions_ + s.transitions, &pending);
        if (resume != nullptr && ok) resume->saved = true;
      };
      hook_ptr = &hook;
    }
    // Whether this run will actually extend the graph: a resumed complete
    // snapshot (empty worklist) has nothing to add, and re-saving it would
    // only grow the delta chain with empty links.
    const bool extends = !resumed || !work_.empty();
    SearchStats stats = core::explore(
        g_.store, work_, opts_.limits,
        [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
        [&](const core::Worklist::Entry& e) -> std::size_t {
          const ta::SymState state = g_.store.state(e.id);
          std::vector<std::int32_t> next;
          for (auto& tr : sem_.successors(state)) {
            next.push_back(intern(std::move(tr.state)));
          }
          const std::size_t taken = next.size();
          g_.succ[static_cast<std::size_t>(e.id)] = std::move(next);
          expand_journal_.push_back(e.id);
          return taken;
        },
        opts_.observer, hook_ptr);
    stats.states_explored += static_cast<std::size_t>(baseline_explored_);
    stats.transitions += static_cast<std::size_t>(baseline_transitions_);
    // Build complete: persist the full graph (empty worklist) so a crash
    // during the violation search resumes straight into it. Skipped when
    // this run itself resumed a complete graph — nothing changed.
    if (!stats.truncated && chain_.has_value() && interval != 0 && extends) {
      const bool ok = save_snapshot(stats.states_explored, stats.transitions,
                                    nullptr);
      if (resume != nullptr && ok) resume->saved = true;
    }
    return stats;
  }

 private:
  std::int32_t intern(ta::SymState s) {
    auto [id, inserted] = g_.store.intern(std::move(s));
    if (inserted) {
      g_.succ.emplace_back();
      work_.push(id);
      if (opts_.observer != nullptr) {
        opts_.observer->on_state_stored(id, g_.store.size());
      }
    }
    return id;
  }

  /// Successor-journal codec: the expanded nodes from `from` on, in
  /// expansion order, each with its successor list. The same layout serves
  /// the base section (from = 0, prefixed with the total node count) and
  /// the delta suffix (from = last saved position).
  void write_succ_journal(ckpt::io::Writer& w, std::size_t from) const {
    w.u64(g_.store.size());
    w.u64(from);
    w.u64(expand_journal_.size() - from);
    for (std::size_t i = from; i < expand_journal_.size(); ++i) {
      const std::int32_t id = expand_journal_[i];
      const auto& next = g_.succ[static_cast<std::size_t>(id)];
      w.i32(id);
      w.u32(static_cast<std::uint32_t>(next.size()));
      for (std::int32_t child : next) w.i32(child);
    }
  }

  static bool read_succ_journal(const std::vector<std::uint8_t>& payload,
                                bool delta,
                                std::vector<std::vector<std::int32_t>>* succ,
                                std::vector<std::int32_t>* journal) {
    ckpt::io::Reader r(payload);
    const std::uint64_t n = r.u64();
    const std::uint64_t from = r.u64();
    const std::uint64_t count = r.u64();
    if (!r.ok() || n != succ->size() || from != journal->size() ||
        (!delta && from != 0) || !r.fits(count, 8)) {
      return false;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::int32_t id = r.i32();
      const std::uint32_t len = r.u32();
      if (!r.ok() || id < 0 || static_cast<std::size_t>(id) >= succ->size() ||
          !r.fits(len, 4)) {
        return false;
      }
      std::vector<std::int32_t>& next = (*succ)[static_cast<std::size_t>(id)];
      next.clear();
      next.reserve(len);
      for (std::uint32_t k = 0; k < len; ++k) {
        const std::int32_t child = r.i32();
        if (child < 0 || static_cast<std::size_t>(child) >= succ->size()) {
          return false;
        }
        next.push_back(child);
      }
      journal->push_back(id);
    }
    return r.ok();
  }

  const ta::SymbolicSemantics& sem_;
  const ReachOptions& opts_;
  Graph g_;
  core::Worklist work_;
  std::uint64_t fp_ = 0;
  /// Ids in expansion order; g_.succ[id] is authoritative once id appears.
  std::vector<std::int32_t> expand_journal_;
  std::uint64_t baseline_explored_ = 0;
  std::uint64_t baseline_transitions_ = 0;
  std::optional<ckpt::ChainWriter> chain_;
  std::size_t saved_states_ = 0;
  std::size_t saved_expanded_ = 0;
  std::vector<core::Worklist::Entry> prev_entries_;
};

/// Iterative detection of a cycle or dead-end inside the non-psi subgraph
/// restricted to nodes reachable from `roots`. Returns a reason string, or
/// empty if the obligation holds.
std::string find_violation(const Graph& g, const std::vector<bool>& is_psi,
                           const std::vector<int>& roots) {
  const int n = static_cast<int>(g.size());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> color(static_cast<std::size_t>(n), 0);
  struct Frame {
    int node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  for (int root : roots) {
    if (is_psi[static_cast<std::size_t>(root)]) continue;  // discharged at once
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    stack.push_back(Frame{root, 0});
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = g.succ[static_cast<std::size_t>(f.node)];
      if (succ.empty()) {
        return "non-psi state with no successors (stuck run)";
      }
      if (f.next_child == succ.size()) {
        color[static_cast<std::size_t>(f.node)] = 2;
        stack.pop_back();
        continue;
      }
      int child = succ[f.next_child++];
      if (is_psi[static_cast<std::size_t>(child)]) continue;  // obligation met
      char& c = color[static_cast<std::size_t>(child)];
      if (c == 1) {
        return "cycle of non-psi states (psi can be avoided forever)";
      }
      if (c == 0) {
        c = 1;
        stack.push_back(Frame{child, 0});
      }
    }
  }
  return {};
}

}  // namespace

LeadsToResult check_leads_to(const ta::System& sys, const StatePredicate& phi,
                             const StatePredicate& psi,
                             const ReachOptions& opts) {
  opts.limits.validate("mc.liveness");
  return common::governed(
      [&] {
        ta::SymbolicSemantics sem(
            sys, ta::SymbolicSemantics::Options{opts.extrapolate});
        LeadsToResult result;
        GraphBuilder builder(sem, phi, psi, opts);
        bool resumed = false;
        if (opts.checkpoint.enabled()) {
          result.resume.path = opts.checkpoint.path;
          if (opts.checkpoint.resume) {
            ckpt::Chain chain;
            result.resume.load =
                ckpt::load_chain(opts.checkpoint.path, builder.fingerprint(),
                                 ckpt::Provider::kLiveness, &chain);
            if (result.resume.load == ckpt::LoadStatus::kOk) {
              resumed = builder.restore_from(chain);
              if (!resumed) result.resume.load = ckpt::LoadStatus::kCorrupt;
            }
            result.resume.resumed = resumed;
          }
        }
        result.stats = builder.build(resumed, &result.resume);
        if (result.stats.truncated) {
          // Unexpanded frontier states would read as stuck runs; a truncated
          // graph supports no verdict at all.
          result.verdict = common::Verdict::kUnknown;
          result.reason = std::string("state space truncated (") +
                          common::to_string(result.stats.stop) + ")";
          return result;
        }
        const Graph& g = builder.graph();
        std::vector<bool> is_psi(g.size());
        std::vector<int> roots;
        for (std::size_t i = 0; i < g.size(); ++i) {
          const ta::SymState s = g.state(i);
          is_psi[i] = psi(s);
          if (!is_psi[i] && phi(s)) {
            roots.push_back(static_cast<int>(i));
          }
        }
        result.reason = find_violation(g, is_psi, roots);
        result.verdict = result.reason.empty() ? common::Verdict::kHolds
                                               : common::Verdict::kViolated;
        return result;
      },
      [&opts](common::StopReason r) {
        LeadsToResult result;
        result.stats.stop_for(r);
        result.reason = std::string("analysis aborted (") +
                        common::to_string(r) + ")";
        result.resume.path = opts.checkpoint.path;
        return result;
      });
}

LeadsToResult check_eventually(const ta::System& sys,
                               const StatePredicate& psi,
                               const ReachOptions& opts) {
  // A<> psi == (initial --> psi): only the initial state seeds the search.
  // The canonical form "initial" is structural — it denotes the model's
  // unique initial symbolic state, so the fingerprint stays collision-free.
  ta::SymbolicSemantics sem(sys, ta::SymbolicSemantics::Options{opts.extrapolate});
  ta::SymState init = sem.initial();
  StatePredicate initial_only(
      [init](const ta::SymState& s) {
        return s.same_discrete(init) && s.zone == init.zone;
      },
      "initial");
  return check_leads_to(sys, initial_only, psi, opts);
}

PossiblyAlwaysResult check_possibly_always(const ta::System& sys,
                                           const StatePredicate& psi,
                                           const ReachOptions& opts) {
  LeadsToResult dual = check_eventually(sys, pred_not(psi), opts);
  PossiblyAlwaysResult result;
  result.stats = dual.stats;
  result.verdict = common::negate(dual.verdict);
  result.resume = std::move(dual.resume);
  return result;
}

}  // namespace quanta::mc
