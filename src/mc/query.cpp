#include "mc/query.h"

namespace quanta::mc {

QueryResult run_query(const ta::System& sys, const Query& query,
                      const ReachOptions& opts) {
  QueryResult result;
  result.name = query.name;
  switch (query.kind) {
    case QueryKind::kInvariant: {
      InvariantResult r = check_invariant(sys, query.p, opts);
      result.holds = r.holds;
      result.stats = r.stats;
      if (!r.holds) result.details = "violated at " + r.violating_state;
      break;
    }
    case QueryKind::kReachability: {
      ReachResult r = reachable(sys, query.p, opts);
      result.holds = r.reachable;
      result.stats = r.stats;
      if (r.reachable) result.details = "witness: " + r.witness;
      break;
    }
    case QueryKind::kLeadsTo: {
      LeadsToResult r = check_leads_to(sys, query.p, query.q, opts);
      result.holds = r.holds;
      result.stats = r.stats;
      result.details = r.reason;
      break;
    }
    case QueryKind::kDeadlockFree: {
      DeadlockResult r = check_deadlock_freedom(sys, opts);
      result.holds = r.deadlock_free;
      result.stats = r.stats;
      if (!r.deadlock_free) result.details = "deadlock at " + r.deadlocked_state;
      break;
    }
  }
  return result;
}

}  // namespace quanta::mc
