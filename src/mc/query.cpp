#include "mc/query.h"

namespace quanta::mc {

QueryResult run_query(const ta::System& sys, const Query& query,
                      const ReachOptions& opts) {
  QueryResult result;
  result.name = query.name;
  switch (query.kind) {
    case QueryKind::kInvariant: {
      InvariantResult r = check_invariant(sys, query.p, opts);
      result.verdict = r.verdict;
      result.stats = r.stats;
      if (r.verdict == common::Verdict::kViolated) {
        result.details = "violated at " + r.violating_state;
      }
      break;
    }
    case QueryKind::kReachability: {
      ReachResult r = reachable(sys, query.p, opts);
      result.verdict = r.verdict;
      result.stats = r.stats;
      if (r.reachable()) result.details = "witness: " + r.witness;
      break;
    }
    case QueryKind::kLeadsTo: {
      LeadsToResult r = check_leads_to(sys, query.p, query.q, opts);
      result.verdict = r.verdict;
      result.stats = r.stats;
      result.details = r.reason;
      break;
    }
    case QueryKind::kDeadlockFree: {
      DeadlockResult r = check_deadlock_freedom(sys, opts);
      result.verdict = r.verdict;
      result.stats = r.stats;
      if (r.verdict == common::Verdict::kViolated) {
        result.details = "deadlock at " + r.deadlocked_state;
      }
      break;
    }
  }
  if (result.verdict == common::Verdict::kUnknown && result.details.empty()) {
    result.details = std::string("inconclusive (") +
                     common::to_string(result.stats.stop) + ")";
  }
  return result;
}

}  // namespace quanta::mc
