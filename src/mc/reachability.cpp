#include "mc/reachability.h"

#include <algorithm>

#include "ckpt/snapshot_core.h"
#include "ckpt/snapshot_ta.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::mc {

StatePredicate loc_pred(const ta::System& sys, const std::string& process,
                        const std::string& location) {
  int p = sys.process_index(process);
  int l = sys.process(p).location_index(location);
  return [p, l](const ta::SymState& s) { return s.locs[p] == l; };
}

StatePredicate pred_and(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) && b(s);
  };
}

StatePredicate pred_or(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) || b(s);
  };
}

StatePredicate pred_not(StatePredicate a) {
  return [a = std::move(a)](const ta::SymState& s) { return !a(s); };
}

namespace {

using SymStore = core::StateStore<ta::SymState>;

class Explorer {
 public:
  Explorer(const ta::System& sys, const ReachOptions& opts)
      : sem_(sys, ta::SymbolicSemantics::Options{opts.extrapolate}),
        opts_(opts),
        // The passed list always deduplicates covered zones; the ablation
        // flag only controls tombstoning of strictly-covered stored states.
        store_(SymStore::Options{/*inclusion=*/true,
                                 /*tombstone_covered=*/opts.inclusion_subsumption}),
        waiting_(opts.order) {}

  /// What this search's checkpoints must match to be resumed: the model
  /// skeleton plus every option that steers the exploration. The goal
  /// predicate is opaque — ReachOptions::checkpoint documents the tag.
  std::uint64_t snapshot_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.mix(ckpt::fingerprint(sem_.system()))
        .mix(opts_.extrapolate ? 1u : 0u)
        .mix(opts_.inclusion_subsumption ? 1u : 0u)
        .mix(static_cast<std::uint64_t>(opts_.order))
        .mix(opts_.record_trace ? 1u : 0u)
        .mix_str(opts_.checkpoint.property_tag);
    return fp.digest();
  }

  /// Rebuilds store/worklist/payload/counters from a validated snapshot.
  /// All-or-nothing: returns false (leaving the explorer fresh) when any
  /// section is missing or internally inconsistent.
  bool restore_from(const ckpt::Snapshot& snap) {
    const ckpt::Section* sec_store = snap.find(ckpt::kSecStore);
    const ckpt::Section* sec_work = snap.find(ckpt::kSecWorklist);
    const ckpt::Section* sec_stats = snap.find(ckpt::kSecSearchStats);
    const ckpt::Section* sec_payload = snap.find(ckpt::kSecEnginePayload);
    if (sec_store == nullptr || sec_work == nullptr || sec_stats == nullptr ||
        sec_payload == nullptr) {
      return false;
    }
    SymStore store(store_.options());
    {
      ckpt::io::Reader r(sec_store->payload);
      if (!ckpt::read_store<ta::SymState, core::StateTraits<ta::SymState>>(
              r, store_.options(), ckpt::read_sym_state, &store)) {
        return false;
      }
    }
    core::Worklist waiting(opts_.order);
    {
      ckpt::io::Reader r(sec_work->payload);
      if (!ckpt::read_worklist(r, &waiting)) return false;
    }
    std::uint64_t explored = 0;
    std::uint64_t transitions = 0;
    {
      ckpt::io::Reader r(sec_stats->payload);
      if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
    }
    std::vector<std::int32_t> parents;
    std::vector<ta::Move> moves;
    {
      ckpt::io::Reader r(sec_payload->payload);
      const std::uint64_t n = r.u64();
      if (n != store.size() || !r.fits(n, 4)) return false;
      parents.resize(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) parents[i] = r.i32();
      moves.resize(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!ckpt::read_move(r, &moves[i])) return false;
      }
      if (!r.ok()) return false;
    }
    store_ = std::move(store);
    waiting_ = std::move(waiting);
    parents_ = std::move(parents);
    moves_ = std::move(moves);
    baseline_explored_ = explored;
    baseline_transitions_ = transitions;
    return true;
  }

  /// Serializes the search at the CheckpointHook's consistent point: the
  /// pending entry goes back into the worklist section and its visit is
  /// subtracted from the explored counter, so the resumed run re-visits and
  /// expands it exactly once.
  bool save_snapshot(const SearchStats& stats,
                     const core::Worklist::Entry& pending) const {
    ckpt::Snapshot snap;
    snap.provider = ckpt::Provider::kExplore;
    snap.fingerprint = snapshot_fingerprint();
    {
      ckpt::io::Writer w;
      ckpt::write_store(w, store_, ckpt::write_sym_state);
      snap.add_section(ckpt::kSecStore, std::move(w));
    }
    {
      ckpt::io::Writer w;
      const bool front = opts_.order != core::SearchOrder::kDfs;
      ckpt::write_worklist(w, waiting_, front ? &pending : nullptr,
                           front ? nullptr : &pending);
      snap.add_section(ckpt::kSecWorklist, std::move(w));
    }
    {
      ckpt::io::Writer w;
      ckpt::write_search_stats(
          w, baseline_explored_ + stats.states_explored - 1,
          baseline_transitions_ + stats.transitions);
      snap.add_section(ckpt::kSecSearchStats, std::move(w));
    }
    {
      ckpt::io::Writer w;
      w.u64(store_.size());
      for (std::int32_t p : parents_) w.i32(p);
      for (const ta::Move& m : moves_) ckpt::write_move(w, m);
      snap.add_section(ckpt::kSecEnginePayload, std::move(w));
    }
    return ckpt::save(opts_.checkpoint.path, snap);
  }

  /// Runs the search; returns the index of a goal node or -1. With
  /// `resumed` the initial state is already interned (restore_from).
  std::int32_t run(const StatePredicate& goal, SearchStats& stats,
                   bool resumed, ckpt::ResumeInfo* resume) {
    if (!resumed) add_state(sem_.initial(), -1, ta::Move{});
    std::int32_t goal_node = -1;
    core::CheckpointHook hook;
    const core::CheckpointHook* hook_ptr = nullptr;
    if (opts_.checkpoint.enabled() &&
        (opts_.checkpoint.save_on_stop || opts_.checkpoint.interval != 0)) {
      hook.interval = opts_.checkpoint.interval;
      hook.sink = [this, resume](const SearchStats& s,
                                 const core::Worklist::Entry& pending) {
        if (s.stop != common::StopReason::kCompleted &&
            !opts_.checkpoint.save_on_stop) {
          return;
        }
        const bool ok = save_snapshot(s, pending);
        if (resume != nullptr && ok) resume->saved = true;
      };
      hook_ptr = &hook;
    }
    stats = core::explore(
        store_, waiting_, opts_.limits,
        [&](const core::Worklist::Entry& e) {
          if (goal(store_.state(e.id))) {
            goal_node = e.id;
            return core::Visit::kStop;
          }
          return core::Visit::kContinue;
        },
        [&](const core::Worklist::Entry& e) -> std::size_t {
          // Copy: the store's state vector may reallocate during expansion.
          const ta::SymState state = store_.state(e.id);
          std::size_t taken = 0;
          for (auto& tr : sem_.successors(state)) {
            ++taken;
            add_state(std::move(tr.state), e.id, std::move(tr.move));
          }
          return taken;
        },
        opts_.observer, hook_ptr);
    stats.states_explored += static_cast<std::size_t>(baseline_explored_);
    stats.transitions += static_cast<std::size_t>(baseline_transitions_);
    return goal_node;
  }

  std::vector<std::string> trace_to(std::int32_t idx) const {
    std::vector<std::string> trace;
    for (std::int32_t cur = idx; cur >= 0;
         cur = parents_[static_cast<std::size_t>(cur)]) {
      trace.push_back(parents_[static_cast<std::size_t>(cur)] < 0
                          ? "init"
                          : moves_[static_cast<std::size_t>(cur)].describe(
                                sem_.system()));
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  }

  std::string describe(std::int32_t idx) const {
    return sem_.state_to_string(store_.state(idx));
  }

 private:
  void add_state(ta::SymState s, std::int32_t parent, ta::Move move) {
    auto [id, inserted] = store_.intern(std::move(s));
    if (!inserted) return;  // covered by a stored zone
    parents_.push_back(parent);
    moves_.push_back(opts_.record_trace ? std::move(move) : ta::Move{});
    waiting_.push(id);
    if (opts_.observer != nullptr) {
      opts_.observer->on_state_stored(id, store_.size());
    }
  }

  ta::SymbolicSemantics sem_;
  ReachOptions opts_;
  SymStore store_;
  core::Worklist waiting_;
  // Per-state payload, indexed by the store's dense ids.
  std::vector<std::int32_t> parents_;
  std::vector<ta::Move> moves_;  ///< move that produced the state
  // Counters carried over from the interrupted run when resuming.
  std::uint64_t baseline_explored_ = 0;
  std::uint64_t baseline_transitions_ = 0;
};

}  // namespace

ReachResult reachable(const ta::System& sys, const StatePredicate& goal,
                      const ReachOptions& opts) {
  opts.limits.validate("mc.reachability");
  return common::governed(
      [&] {
        Explorer explorer(sys, opts);
        ReachResult result;
        bool resumed = false;
        if (opts.checkpoint.enabled()) {
          result.resume.path = opts.checkpoint.path;
          if (opts.checkpoint.resume) {
            ckpt::Snapshot snap;
            result.resume.load =
                ckpt::load(opts.checkpoint.path,
                           explorer.snapshot_fingerprint(),
                           ckpt::Provider::kExplore, &snap);
            if (result.resume.load == ckpt::LoadStatus::kOk) {
              resumed = explorer.restore_from(snap);
              // Validated but not reconstructible (section layout drift):
              // degrade to a fresh start, reported as corruption.
              if (!resumed) result.resume.load = ckpt::LoadStatus::kCorrupt;
            }
            result.resume.resumed = resumed;
          }
        }
        std::int32_t idx =
            explorer.run(goal, result.stats, resumed, &result.resume);
        if (idx >= 0) {
          // A witness is sound no matter what budget would have tripped
          // next: the search stopped with kCompleted before any check.
          result.verdict = common::Verdict::kHolds;
          result.witness = explorer.describe(idx);
          if (opts.record_trace) result.trace = explorer.trace_to(idx);
        } else {
          result.verdict = result.stats.truncated
                               ? common::Verdict::kUnknown
                               : common::Verdict::kViolated;
        }
        return result;
      },
      [&opts](common::StopReason r) {
        ReachResult result;
        result.stats.stop_for(r);
        result.resume.path = opts.checkpoint.path;
        return result;
      });
}

InvariantResult check_invariant(const ta::System& sys,
                                const StatePredicate& safe,
                                const ReachOptions& opts) {
  ReachResult r = reachable(sys, pred_not(safe), opts);
  InvariantResult inv;
  inv.verdict = common::negate(r.verdict);
  inv.stats = r.stats;
  inv.counterexample = std::move(r.trace);
  inv.violating_state = std::move(r.witness);
  inv.resume = std::move(r.resume);
  return inv;
}

}  // namespace quanta::mc
