#include "mc/reachability.h"

#include <deque>
#include <unordered_map>

namespace quanta::mc {

StatePredicate loc_pred(const ta::System& sys, const std::string& process,
                        const std::string& location) {
  int p = sys.process_index(process);
  int l = sys.process(p).location_index(location);
  return [p, l](const ta::SymState& s) { return s.locs[p] == l; };
}

StatePredicate pred_and(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) && b(s);
  };
}

StatePredicate pred_or(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) || b(s);
  };
}

StatePredicate pred_not(StatePredicate a) {
  return [a = std::move(a)](const ta::SymState& s) { return !a(s); };
}

namespace {

struct Node {
  ta::SymState state;
  int parent = -1;
  ta::Move move;         ///< move that produced this node (described lazily)
  bool covered = false;  ///< subsumed by a later, larger zone
};

class Explorer {
 public:
  Explorer(const ta::System& sys, const ReachOptions& opts)
      : sem_(sys, ta::SymbolicSemantics::Options{opts.extrapolate}),
        opts_(opts) {}

  /// Runs the search; returns the index of a goal node or -1.
  int run(const StatePredicate& goal, SearchStats& stats) {
    add_state(sem_.initial(), -1, ta::Move{});
    int goal_node = -1;
    while (!waiting_.empty()) {
      int idx = waiting_.front();
      waiting_.pop_front();
      if (nodes_[static_cast<std::size_t>(idx)].covered) continue;
      // Copy out what we need: nodes_ may reallocate during expansion.
      const ta::SymState state = nodes_[static_cast<std::size_t>(idx)].state;
      ++stats.states_explored;
      if (goal(state)) {
        goal_node = idx;
        break;
      }
      if (nodes_.size() >= opts_.max_states) {
        stats.truncated = true;
        break;
      }
      for (auto& tr : sem_.successors(state)) {
        ++stats.transitions;
        add_state(std::move(tr.state), idx, std::move(tr.move));
      }
    }
    stats.states_stored = nodes_.size();
    return goal_node;
  }

  std::vector<std::string> trace_to(int idx) const {
    std::vector<std::string> trace;
    for (int cur = idx; cur >= 0;
         cur = nodes_[static_cast<std::size_t>(cur)].parent) {
      const Node& node = nodes_[static_cast<std::size_t>(cur)];
      trace.push_back(node.parent < 0 ? "init"
                                      : node.move.describe(sem_.system()));
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  }

  std::string describe(int idx) const {
    return sem_.state_to_string(nodes_[static_cast<std::size_t>(idx)].state);
  }

 private:
  void add_state(ta::SymState s, int parent, ta::Move move) {
    std::size_t key = s.discrete_hash();
    auto& bucket = buckets_[key];
    for (int n : bucket) {
      Node& node = nodes_[static_cast<std::size_t>(n)];
      if (node.covered || !node.state.same_discrete(s)) continue;
      dbm::Relation r = s.zone.relation(node.state.zone);
      if (r == dbm::Relation::kEqual || r == dbm::Relation::kSubset) {
        return;  // already covered by a stored zone
      }
      if (opts_.inclusion_subsumption && r == dbm::Relation::kSuperset) {
        node.covered = true;  // the new zone strictly covers this one
      }
    }
    int idx = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{std::move(s), parent,
                          opts_.record_trace ? std::move(move) : ta::Move{},
                          false});
    bucket.push_back(idx);
    waiting_.push_back(idx);
  }

  ta::SymbolicSemantics sem_;
  ReachOptions opts_;
  std::vector<Node> nodes_;
  std::unordered_map<std::size_t, std::vector<int>> buckets_;
  std::deque<int> waiting_;
};

}  // namespace

ReachResult reachable(const ta::System& sys, const StatePredicate& goal,
                      const ReachOptions& opts) {
  Explorer explorer(sys, opts);
  ReachResult result;
  int idx = explorer.run(goal, result.stats);
  result.reachable = idx >= 0;
  if (idx >= 0) {
    result.witness = explorer.describe(idx);
    if (opts.record_trace) result.trace = explorer.trace_to(idx);
  }
  return result;
}

InvariantResult check_invariant(const ta::System& sys,
                                const StatePredicate& safe,
                                const ReachOptions& opts) {
  ReachResult r = reachable(sys, pred_not(safe), opts);
  InvariantResult inv;
  inv.holds = !r.reachable && !r.stats.truncated;
  inv.stats = r.stats;
  inv.counterexample = std::move(r.trace);
  inv.violating_state = std::move(r.witness);
  return inv;
}

}  // namespace quanta::mc
