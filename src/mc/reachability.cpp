#include "mc/reachability.h"

#include <algorithm>

#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::mc {

StatePredicate loc_pred(const ta::System& sys, const std::string& process,
                        const std::string& location) {
  int p = sys.process_index(process);
  int l = sys.process(p).location_index(location);
  return [p, l](const ta::SymState& s) { return s.locs[p] == l; };
}

StatePredicate pred_and(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) && b(s);
  };
}

StatePredicate pred_or(StatePredicate a, StatePredicate b) {
  return [a = std::move(a), b = std::move(b)](const ta::SymState& s) {
    return a(s) || b(s);
  };
}

StatePredicate pred_not(StatePredicate a) {
  return [a = std::move(a)](const ta::SymState& s) { return !a(s); };
}

namespace {

using SymStore = core::StateStore<ta::SymState>;

class Explorer {
 public:
  Explorer(const ta::System& sys, const ReachOptions& opts)
      : sem_(sys, ta::SymbolicSemantics::Options{opts.extrapolate}),
        opts_(opts),
        // The passed list always deduplicates covered zones; the ablation
        // flag only controls tombstoning of strictly-covered stored states.
        store_(SymStore::Options{/*inclusion=*/true,
                                 /*tombstone_covered=*/opts.inclusion_subsumption}),
        waiting_(opts.order) {}

  /// Runs the search; returns the index of a goal node or -1.
  std::int32_t run(const StatePredicate& goal, SearchStats& stats) {
    add_state(sem_.initial(), -1, ta::Move{});
    std::int32_t goal_node = -1;
    stats = core::explore(
        store_, waiting_, opts_.limits,
        [&](const core::Worklist::Entry& e) {
          if (goal(store_.state(e.id))) {
            goal_node = e.id;
            return core::Visit::kStop;
          }
          return core::Visit::kContinue;
        },
        [&](const core::Worklist::Entry& e) -> std::size_t {
          // Copy: the store's state vector may reallocate during expansion.
          const ta::SymState state = store_.state(e.id);
          std::size_t taken = 0;
          for (auto& tr : sem_.successors(state)) {
            ++taken;
            add_state(std::move(tr.state), e.id, std::move(tr.move));
          }
          return taken;
        },
        opts_.observer);
    return goal_node;
  }

  std::vector<std::string> trace_to(std::int32_t idx) const {
    std::vector<std::string> trace;
    for (std::int32_t cur = idx; cur >= 0;
         cur = parents_[static_cast<std::size_t>(cur)]) {
      trace.push_back(parents_[static_cast<std::size_t>(cur)] < 0
                          ? "init"
                          : moves_[static_cast<std::size_t>(cur)].describe(
                                sem_.system()));
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  }

  std::string describe(std::int32_t idx) const {
    return sem_.state_to_string(store_.state(idx));
  }

 private:
  void add_state(ta::SymState s, std::int32_t parent, ta::Move move) {
    auto [id, inserted] = store_.intern(std::move(s));
    if (!inserted) return;  // covered by a stored zone
    parents_.push_back(parent);
    moves_.push_back(opts_.record_trace ? std::move(move) : ta::Move{});
    waiting_.push(id);
    if (opts_.observer != nullptr) {
      opts_.observer->on_state_stored(id, store_.size());
    }
  }

  ta::SymbolicSemantics sem_;
  ReachOptions opts_;
  SymStore store_;
  core::Worklist waiting_;
  // Per-state payload, indexed by the store's dense ids.
  std::vector<std::int32_t> parents_;
  std::vector<ta::Move> moves_;  ///< move that produced the state
};

}  // namespace

ReachResult reachable(const ta::System& sys, const StatePredicate& goal,
                      const ReachOptions& opts) {
  opts.limits.validate("mc.reachability");
  return common::governed(
      [&] {
        Explorer explorer(sys, opts);
        ReachResult result;
        std::int32_t idx = explorer.run(goal, result.stats);
        if (idx >= 0) {
          // A witness is sound no matter what budget would have tripped
          // next: the search stopped with kCompleted before any check.
          result.verdict = common::Verdict::kHolds;
          result.witness = explorer.describe(idx);
          if (opts.record_trace) result.trace = explorer.trace_to(idx);
        } else {
          result.verdict = result.stats.truncated
                               ? common::Verdict::kUnknown
                               : common::Verdict::kViolated;
        }
        return result;
      },
      [](common::StopReason r) {
        ReachResult result;
        result.stats.stop_for(r);
        return result;
      });
}

InvariantResult check_invariant(const ta::System& sys,
                                const StatePredicate& safe,
                                const ReachOptions& opts) {
  ReachResult r = reachable(sys, pred_not(safe), opts);
  InvariantResult inv;
  inv.verdict = common::negate(r.verdict);
  inv.stats = r.stats;
  inv.counterexample = std::move(r.trace);
  inv.violating_state = std::move(r.witness);
  return inv;
}

}  // namespace quanta::mc
