#include "mc/reachability.h"

#include <algorithm>
#include <optional>

#include "ckpt/delta.h"
#include "ckpt/snapshot_core.h"
#include "ckpt/snapshot_ta.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::mc {

StatePredicate loc_pred(const ta::System& sys, const std::string& process,
                        const std::string& location) {
  int p = sys.process_index(process);
  int l = sys.process(p).location_index(location);
  return common::loc_index_pred<ta::SymState>(p, l);
}

namespace {

using SymStore = core::StateStore<ta::SymState>;

class Explorer {
 public:
  Explorer(const ta::System& sys, const StatePredicate& goal,
           const ReachOptions& opts)
      : sem_(sys, ta::SymbolicSemantics::Options{opts.extrapolate}),
        opts_(opts),
        goal_(goal),
        // The passed list always deduplicates covered zones; the ablation
        // flag only controls tombstoning of strictly-covered stored states.
        store_(SymStore::Options{/*inclusion=*/true,
                                 /*tombstone_covered=*/opts.inclusion_subsumption}),
        waiting_(opts.order) {
    if (opts_.checkpoint.enabled()) {
      chain_.emplace(opts_.checkpoint.path, ckpt::Provider::kExplore,
                     snapshot_fingerprint(), opts_.checkpoint.max_deltas);
    }
  }

  /// What this search's checkpoints must match to be resumed: the model
  /// skeleton, every option that steers the exploration, and the canonical
  /// AST of the goal predicate — a structurally different query never
  /// resumes this search's checkpoints.
  std::uint64_t snapshot_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.mix(ckpt::fingerprint(sem_.system()))
        .mix(opts_.extrapolate ? 1u : 0u)
        .mix(opts_.inclusion_subsumption ? 1u : 0u)
        .mix(static_cast<std::uint64_t>(opts_.order))
        .mix(opts_.record_trace ? 1u : 0u)
        .mix_str(goal_.canonical());
    return fp.digest();
  }

  /// Rebuilds store/worklist/payload/counters from a validated checkpoint
  /// chain, replaying the base snapshot and every delta. All-or-nothing:
  /// returns false (leaving the explorer fresh) when any section is missing
  /// or internally inconsistent. On success the chain writer adopts the
  /// chain tip, so subsequent periodic saves keep appending to it.
  bool restore_from(const ckpt::Chain& chain) {
    const ckpt::Section* sec_store = chain.base.find(ckpt::kSecStore);
    const ckpt::Section* sec_work = chain.base.find(ckpt::kSecWorklist);
    const ckpt::Section* sec_stats = chain.base.find(ckpt::kSecSearchStats);
    const ckpt::Section* sec_payload = chain.base.find(ckpt::kSecEnginePayload);
    if (sec_store == nullptr || sec_work == nullptr || sec_stats == nullptr ||
        sec_payload == nullptr) {
      return false;
    }
    std::vector<ta::SymState> states;
    std::vector<std::uint8_t> covered;
    {
      ckpt::io::Reader r(sec_store->payload);
      if (!ckpt::read_store_vectors<ta::SymState>(
              r, store_.options().inclusion, store_.options().tombstone_covered,
              ckpt::read_sym_state, &states, &covered)) {
        return false;
      }
    }
    std::vector<core::Worklist::Entry> entries;
    {
      ckpt::io::Reader r(sec_work->payload);
      if (!ckpt::read_worklist_entries(r, opts_.order, &entries)) return false;
    }
    std::uint64_t explored = 0;
    std::uint64_t transitions = 0;
    {
      ckpt::io::Reader r(sec_stats->payload);
      if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
    }
    std::vector<std::int32_t> parents;
    std::vector<ta::Move> moves;
    {
      ckpt::io::Reader r(sec_payload->payload);
      const std::uint64_t n = r.u64();
      if (n != states.size() || !r.fits(n, 4)) return false;
      parents.resize(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) parents[i] = r.i32();
      moves.resize(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!ckpt::read_move(r, &moves[i])) return false;
      }
      if (!r.ok()) return false;
    }
    // The base's covered flips all predate its journal cut; deltas validate
    // their journal base position against this running length.
    std::uint64_t journal_len = 0;
    for (std::uint8_t c : covered) journal_len += c != 0 ? 1 : 0;

    for (const ckpt::Delta& d : chain.deltas) {
      const ckpt::Section* d_store = d.find(ckpt::kSecStoreDelta);
      const ckpt::Section* d_work = d.find(ckpt::kSecWorklistDelta);
      const ckpt::Section* d_stats = d.find(ckpt::kSecSearchStats);
      const ckpt::Section* d_payload = d.find(ckpt::kSecEnginePayload);
      if (d_store == nullptr || d_work == nullptr || d_stats == nullptr ||
          d_payload == nullptr) {
        return false;
      }
      {
        ckpt::io::Reader r(d_store->payload);
        if (!ckpt::apply_store_delta<ta::SymState>(
                r, ckpt::read_sym_state, &states, &covered, &journal_len)) {
          return false;
        }
      }
      {
        ckpt::io::Reader r(d_work->payload);
        if (!ckpt::apply_worklist_delta(r, &entries)) return false;
      }
      {
        ckpt::io::Reader r(d_stats->payload);
        if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
      }
      {
        ckpt::io::Reader r(d_payload->payload);
        const std::uint64_t base_n = r.u64();
        const std::uint64_t appended = r.u64();
        if (!r.ok() || base_n != parents.size() ||
            base_n + appended != states.size() || !r.fits(appended, 4)) {
          return false;
        }
        for (std::uint64_t i = 0; i < appended; ++i) {
          parents.push_back(r.i32());
        }
        for (std::uint64_t i = 0; i < appended; ++i) {
          ta::Move m;
          if (!ckpt::read_move(r, &m)) return false;
          moves.push_back(std::move(m));
        }
        if (!r.ok()) return false;
      }
    }

    prev_entries_ = entries;
    store_ = SymStore::restore(store_.options(), std::move(states),
                               std::move(covered));
    waiting_.restore(std::move(entries));
    parents_ = std::move(parents);
    moves_ = std::move(moves);
    baseline_explored_ = explored;
    baseline_transitions_ = transitions;
    saved_states_ = store_.size();
    saved_journal_ = store_.covered_journal().size();
    if (chain_.has_value()) chain_->adopt(chain);
    return true;
  }

  /// Serializes the search at the CheckpointHook's consistent point: the
  /// pending entry goes back into the worklist (at the position its order
  /// pops next) and its visit is subtracted from the explored counter, so
  /// the resumed run re-visits and expands it exactly once. Writes a full
  /// base snapshot or appends an incremental delta, per the chain's
  /// compaction policy; the remembered diff positions only advance on a
  /// successful write, so a failed save retries the same (wider) diff.
  bool save_snapshot(const SearchStats& stats,
                     const core::Worklist::Entry& pending) {
    if (!chain_.has_value()) return false;
    const bool front = opts_.order == core::SearchOrder::kBfs;
    std::vector<core::Worklist::Entry> cur;
    {
      const std::vector<core::Worklist::Entry> body = waiting_.snapshot();
      cur.reserve(body.size() + 1);
      if (front) cur.push_back(pending);
      cur.insert(cur.end(), body.begin(), body.end());
      if (!front) cur.push_back(pending);
    }
    const std::uint64_t explored =
        baseline_explored_ + stats.states_explored - 1;
    const std::uint64_t transitions =
        baseline_transitions_ + stats.transitions;

    bool ok;
    if (chain_->want_base()) {
      ckpt::Snapshot snap;
      {
        ckpt::io::Writer w;
        ckpt::write_store(w, store_, ckpt::write_sym_state);
        snap.add_section(ckpt::kSecStore, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist(w, waiting_, front ? &pending : nullptr,
                             front ? nullptr : &pending);
        snap.add_section(ckpt::kSecWorklist, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        snap.add_section(ckpt::kSecSearchStats, std::move(w));
      }
      {
        ckpt::io::Writer w;
        w.u64(store_.size());
        for (std::int32_t p : parents_) w.i32(p);
        for (const ta::Move& m : moves_) ckpt::write_move(w, m);
        snap.add_section(ckpt::kSecEnginePayload, std::move(w));
      }
      ok = chain_->save_base(std::move(snap));
    } else {
      std::vector<ckpt::Section> secs;
      {
        ckpt::io::Writer w;
        ckpt::write_store_delta(w, store_, saved_states_, saved_journal_,
                                ckpt::write_sym_state);
        secs.push_back(ckpt::Section{ckpt::kSecStoreDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist_delta(w, prev_entries_, cur);
        secs.push_back(ckpt::Section{ckpt::kSecWorklistDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        secs.push_back(ckpt::Section{ckpt::kSecSearchStats, w.take()});
      }
      {
        ckpt::io::Writer w;
        w.u64(saved_states_);
        w.u64(store_.size() - saved_states_);
        for (std::size_t i = saved_states_; i < parents_.size(); ++i) {
          w.i32(parents_[i]);
        }
        for (std::size_t i = saved_states_; i < moves_.size(); ++i) {
          ckpt::write_move(w, moves_[i]);
        }
        secs.push_back(ckpt::Section{ckpt::kSecEnginePayload, w.take()});
      }
      ok = chain_->save_delta_link(std::move(secs));
    }
    if (ok) {
      saved_states_ = store_.size();
      saved_journal_ = store_.covered_journal().size();
      prev_entries_ = std::move(cur);
    }
    return ok;
  }

  /// Runs the search; returns the index of a goal node or -1. With
  /// `resumed` the initial state is already interned (restore_from).
  std::int32_t run(SearchStats& stats, bool resumed,
                   ckpt::ResumeInfo* resume) {
    if (!resumed) add_state(sem_.initial(), -1, ta::Move{});
    std::int32_t goal_node = -1;
    core::CheckpointHook hook;
    const core::CheckpointHook* hook_ptr = nullptr;
    const std::uint64_t interval = opts_.checkpoint.effective_interval();
    if (opts_.checkpoint.enabled() &&
        (opts_.checkpoint.save_on_stop || interval != 0)) {
      hook.interval = interval;
      hook.sink = [this, resume](const SearchStats& s,
                                 const core::Worklist::Entry& pending) {
        if (s.stop != common::StopReason::kCompleted &&
            !opts_.checkpoint.save_on_stop) {
          return;
        }
        const bool ok = save_snapshot(s, pending);
        if (resume != nullptr && ok) resume->saved = true;
      };
      hook_ptr = &hook;
    }
    stats = core::explore(
        store_, waiting_, opts_.limits,
        [&](const core::Worklist::Entry& e) {
          if (goal_(store_.state(e.id))) {
            goal_node = e.id;
            return core::Visit::kStop;
          }
          return core::Visit::kContinue;
        },
        [&](const core::Worklist::Entry& e) -> std::size_t {
          // Copy: the store's state vector may reallocate during expansion.
          const ta::SymState state = store_.state(e.id);
          std::size_t taken = 0;
          for (auto& tr : sem_.successors(state)) {
            ++taken;
            add_state(std::move(tr.state), e.id, std::move(tr.move));
          }
          return taken;
        },
        opts_.observer, hook_ptr);
    stats.states_explored += static_cast<std::size_t>(baseline_explored_);
    stats.transitions += static_cast<std::size_t>(baseline_transitions_);
    return goal_node;
  }

  std::vector<std::string> trace_to(std::int32_t idx) const {
    std::vector<std::string> trace;
    for (std::int32_t cur = idx; cur >= 0;
         cur = parents_[static_cast<std::size_t>(cur)]) {
      trace.push_back(parents_[static_cast<std::size_t>(cur)] < 0
                          ? "init"
                          : moves_[static_cast<std::size_t>(cur)].describe(
                                sem_.system()));
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  }

  std::string describe(std::int32_t idx) const {
    return sem_.state_to_string(store_.state(idx));
  }

 private:
  void add_state(ta::SymState s, std::int32_t parent, ta::Move move) {
    auto [id, inserted] = store_.intern(std::move(s));
    if (!inserted) return;  // covered by a stored zone
    parents_.push_back(parent);
    moves_.push_back(opts_.record_trace ? std::move(move) : ta::Move{});
    waiting_.push(id);
    if (opts_.observer != nullptr) {
      opts_.observer->on_state_stored(id, store_.size());
    }
  }

  ta::SymbolicSemantics sem_;
  ReachOptions opts_;
  const StatePredicate& goal_;
  SymStore store_;
  core::Worklist waiting_;
  // Per-state payload, indexed by the store's dense ids.
  std::vector<std::int32_t> parents_;
  std::vector<ta::Move> moves_;  ///< move that produced the state
  // Counters carried over from the interrupted run when resuming.
  std::uint64_t baseline_explored_ = 0;
  std::uint64_t baseline_transitions_ = 0;
  // Delta-snapshot bookkeeping: the chain being appended to and the store /
  // covered-journal / worklist positions of the last successful save.
  std::optional<ckpt::ChainWriter> chain_;
  std::size_t saved_states_ = 0;
  std::size_t saved_journal_ = 0;
  std::vector<core::Worklist::Entry> prev_entries_;
};

}  // namespace

ReachResult reachable(const ta::System& sys, const StatePredicate& goal,
                      const ReachOptions& opts) {
  opts.limits.validate("mc.reachability");
  return common::governed(
      [&] {
        Explorer explorer(sys, goal, opts);
        ReachResult result;
        bool resumed = false;
        if (opts.checkpoint.enabled()) {
          result.resume.path = opts.checkpoint.path;
          if (opts.checkpoint.resume) {
            ckpt::Chain chain;
            result.resume.load =
                ckpt::load_chain(opts.checkpoint.path,
                                 explorer.snapshot_fingerprint(),
                                 ckpt::Provider::kExplore, &chain);
            if (result.resume.load == ckpt::LoadStatus::kOk) {
              resumed = explorer.restore_from(chain);
              // Validated but not reconstructible (section layout drift):
              // degrade to a fresh start, reported as corruption.
              if (!resumed) result.resume.load = ckpt::LoadStatus::kCorrupt;
            }
            result.resume.resumed = resumed;
          }
        }
        std::int32_t idx = explorer.run(result.stats, resumed, &result.resume);
        if (idx >= 0) {
          // A witness is sound no matter what budget would have tripped
          // next: the search stopped with kCompleted before any check.
          result.verdict = common::Verdict::kHolds;
          result.witness = explorer.describe(idx);
          if (opts.record_trace) result.trace = explorer.trace_to(idx);
        } else {
          result.verdict = result.stats.truncated
                               ? common::Verdict::kUnknown
                               : common::Verdict::kViolated;
        }
        return result;
      },
      [&opts](common::StopReason r) {
        ReachResult result;
        result.stats.stop_for(r);
        result.resume.path = opts.checkpoint.path;
        return result;
      });
}

InvariantResult check_invariant(const ta::System& sys,
                                const StatePredicate& safe,
                                const ReachOptions& opts) {
  ReachResult r = reachable(sys, pred_not(safe), opts);
  InvariantResult inv;
  inv.verdict = common::negate(r.verdict);
  inv.stats = r.stats;
  inv.counterexample = std::move(r.trace);
  inv.violating_state = std::move(r.witness);
  inv.resume = std::move(r.resume);
  return inv;
}

}  // namespace quanta::mc
