// Exact symbolic deadlock detection: a valuation is deadlocked when no
// discrete transition is enabled now or after any legal delay. Implemented
// with zone federations (set difference of the stored zone and the
// delay-predecessors of all enabled guards), matching UPPAAL's
// `A[] not deadlock`.
#pragma once

#include "mc/reachability.h"

namespace quanta::mc {

struct DeadlockResult {
  /// kHolds = deadlock-free over the fully explored state space; kViolated
  /// = a deadlocked state was found (see trace); kUnknown = truncated.
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  std::vector<std::string> trace;     ///< path to a deadlocked state
  std::string deadlocked_state;

  bool deadlock_free() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

DeadlockResult check_deadlock_freedom(const ta::System& sys,
                                      const ReachOptions& opts = {});

/// The deadlocked portion of one symbolic state (exposed for testing):
/// the subset of the zone from which no move in `sem` can ever be taken.
dbm::Dbm deadlocked_part_witness(const ta::SymbolicSemantics& sem,
                                 const ta::SymState& s);

}  // namespace quanta::mc
