#include "svc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace quanta::svc {

const char* transport_error_name(TransportError e) {
  switch (e) {
    case TransportError::kNone:
      return "none";
    case TransportError::kConnect:
      return "connect";
    case TransportError::kSend:
      return "send";
    case TransportError::kClosed:
      return "closed";
    case TransportError::kTruncated:
      return "truncated";
    case TransportError::kRecv:
      return "recv";
  }
  return "?";
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_ms_(other.timeout_ms_),
      transport_error_(other.transport_error_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ms_ = other.timeout_ms_;
    transport_error_ = other.transport_error_;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::apply_io_timeout(std::string* error) {
  if (timeout_ms_ == 0) return true;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms_ / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms_ % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    *error = std::string("setsockopt(timeout): ") + std::strerror(errno);
    transport_error_ = TransportError::kConnect;
    close();
    return false;
  }
  return true;
}

bool Client::finish_connect(int fd, const void* addr, std::size_t addr_len,
                            const std::string& what, std::string* error) {
  fd_ = fd;
  auto fail = [&](const std::string& why) {
    *error = "connect " + what + ": " + why;
    transport_error_ = TransportError::kConnect;
    close();
    return false;
  };
  if (timeout_ms_ == 0) {
    if (::connect(fd_, static_cast<const sockaddr*>(addr),
                  static_cast<socklen_t>(addr_len)) < 0) {
      return fail(std::strerror(errno));
    }
    return true;
  }
  // Timed connect: non-blocking connect, poll for writability, then check
  // SO_ERROR and restore blocking mode (per-op timeouts come from
  // SO_RCVTIMEO/SO_SNDTIMEO afterwards).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return fail(std::string("fcntl: ") + std::strerror(errno));
  }
  if (::connect(fd_, static_cast<const sockaddr*>(addr),
                static_cast<socklen_t>(addr_len)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return fail(std::strerror(errno));
    }
    pollfd p{};
    p.fd = fd_;
    p.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&p, 1, static_cast<int>(timeout_ms_));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) return fail("timed out");
    if (rc < 0) return fail(std::string("poll: ") + std::strerror(errno));
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
      return fail(std::string("getsockopt: ") + std::strerror(errno));
    }
    if (soerr != 0) return fail(std::strerror(soerr));
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    return fail(std::string("fcntl: ") + std::strerror(errno));
  }
  return apply_io_timeout(error);
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  close();
  transport_error_ = TransportError::kNone;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    transport_error_ = TransportError::kConnect;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    transport_error_ = TransportError::kConnect;
    return false;
  }
  return finish_connect(fd, &addr, sizeof(addr), path, error);
}

bool Client::connect_tcp(const std::string& host, int port,
                         std::string* error) {
  close();
  transport_error_ = TransportError::kNone;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid IPv4 address '" + host + "'";
    transport_error_ = TransportError::kConnect;
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    transport_error_ = TransportError::kConnect;
    return false;
  }
  return finish_connect(fd, &addr, sizeof(addr),
                        host + ":" + std::to_string(port), error);
}

bool Client::call(const WireMap& request, WireMap* response,
                  std::string* error) {
  transport_error_ = TransportError::kNone;
  if (fd_ < 0) {
    *error = "not connected";
    transport_error_ = TransportError::kConnect;
    return false;
  }
  if (!write_frame(fd_, request.to_json())) {
    *error = std::string("send: ") + std::strerror(errno);
    transport_error_ = TransportError::kSend;
    close();
    return false;
  }
  std::string payload;
  switch (read_frame(fd_, &payload)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kEof:
      *error = "connection closed by daemon";
      transport_error_ = TransportError::kClosed;
      close();
      return false;
    case FrameStatus::kTruncated:
      *error = "truncated response (daemon died mid-reply)";
      transport_error_ = TransportError::kTruncated;
      close();
      return false;
    case FrameStatus::kTooLarge:
      *error = "oversized response frame";
      transport_error_ = TransportError::kRecv;
      close();
      return false;
    case FrameStatus::kError:
      *error = std::string("recv: ") + std::strerror(errno);
      transport_error_ = TransportError::kRecv;
      close();
      return false;
  }
  auto parsed = WireMap::parse_json(payload, error);
  if (!parsed) {
    close();
    return false;
  }
  *response = std::move(*parsed);
  return true;
}

bool Client::analyze(const Request& req, Response* out, std::string* error) {
  WireMap reply;
  if (!call(to_wire(req), &reply, error)) return false;
  auto parsed = parse_response(reply, error);
  if (!parsed) return false;
  *out = std::move(*parsed);
  return true;
}

namespace {

/// FNV-1a over the request key and the attempt number: jitter that spreads
/// identical concurrent clients apart while staying reproducible.
std::uint64_t jitter_ms(const Request& req, unsigned attempt,
                        std::uint64_t spread) {
  if (spread == 0) return 0;
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= '\x1f';
    h *= 1099511628211ull;
  };
  mix(req.engine);
  mix(req.model);
  mix(req.query);
  h ^= attempt;
  h *= 1099511628211ull;
  return h % spread;
}

}  // namespace

bool analyze_with_retry(const Endpoint& ep, const RetryPolicy& policy,
                        const Request& req, Response* out, std::string* error,
                        TransportError* transport) {
  std::string err;
  TransportError te = TransportError::kNone;
  for (unsigned attempt = 0;; ++attempt) {
    Client client;
    client.set_timeout_ms(policy.timeout_ms);
    bool ok = ep.socket_path.empty()
                  ? client.connect_tcp(ep.host, ep.port, &err)
                  : client.connect_unix(ep.socket_path, &err);
    bool retryable = false;
    if (ok) {
      ok = client.analyze(req, out, &err);
      if (ok) {
        // A daemon shedding load or shutting down is worth another try;
        // every other status is the answer.
        retryable = out->status == Status::kOverload ||
                    out->status == Status::kShutdown;
        if (!retryable) {
          if (error != nullptr) error->clear();
          if (transport != nullptr) *transport = TransportError::kNone;
          return true;
        }
        err = "daemon answered " +
              std::string(out->status == Status::kOverload ? "overloaded"
                                                           : "shutting down");
        te = TransportError::kNone;
      }
    }
    if (!ok) {
      te = client.last_transport_error();
      // Parse failures (te == kNone) are protocol bugs, not weather.
      retryable = te != TransportError::kNone;
    }
    if (!retryable || attempt >= policy.retries) {
      if (error != nullptr) *error = err;
      if (transport != nullptr) *transport = te;
      return false;
    }
    std::uint64_t delay = policy.backoff_base_ms;
    if (attempt < 63) delay <<= attempt;
    if (delay > policy.backoff_max_ms) delay = policy.backoff_max_ms;
    delay += jitter_ms(req, attempt, policy.backoff_base_ms + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

bool wait_ready(const Endpoint& ep, std::uint64_t timeout_ms,
                std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  Request ping;
  ping.engine = "svc";
  ping.query = "ping";
  std::uint64_t backoff_ms = 10;
  std::string err = "timed out before the first attempt";
  for (;;) {
    Client client;
    // Bound each attempt so a daemon that accepts but never answers (e.g.
    // mid-crash) cannot absorb the whole budget in one read.
    client.set_timeout_ms(1000);
    WireMap reply;
    const bool ok = (ep.socket_path.empty()
                         ? client.connect_tcp(ep.host, ep.port, &err)
                         : client.connect_unix(ep.socket_path, &err)) &&
                    client.call(to_wire(ping), &reply, &err);
    if (ok) {
      const std::string* status = reply.get("status");
      if (status != nullptr && *status == "ok") {
        if (error != nullptr) error->clear();
        return true;
      }
      err = "daemon answered ping without status=ok";
    }
    const auto now = std::chrono::steady_clock::now();
    if (now + std::chrono::milliseconds(backoff_ms) >= deadline) {
      if (error != nullptr) {
        *error = "daemon not ready after " + std::to_string(timeout_ms) +
                 " ms (last failure: " + err + ")";
      }
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = backoff_ms < 100 ? backoff_ms * 2 : 200;
  }
}

}  // namespace quanta::svc
