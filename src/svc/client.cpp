#include "svc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace quanta::svc {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = "connect " + path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connect_tcp(const std::string& host, int port, std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid IPv4 address '" + host + "'";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::call(const WireMap& request, WireMap* response,
                  std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!write_frame(fd_, request.to_json())) {
    *error = std::string("send: ") + std::strerror(errno);
    close();
    return false;
  }
  std::string payload;
  switch (read_frame(fd_, &payload)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kEof:
      *error = "connection closed by daemon";
      close();
      return false;
    case FrameStatus::kTooLarge:
      *error = "oversized response frame";
      close();
      return false;
    case FrameStatus::kError:
      *error = std::string("recv: ") + std::strerror(errno);
      close();
      return false;
  }
  auto parsed = WireMap::parse_json(payload, error);
  if (!parsed) {
    close();
    return false;
  }
  *response = std::move(*parsed);
  return true;
}

bool Client::analyze(const Request& req, Response* out, std::string* error) {
  WireMap reply;
  if (!call(to_wire(req), &reply, error)) return false;
  auto parsed = parse_response(reply, error);
  if (!parsed) return false;
  *out = std::move(*parsed);
  return true;
}

}  // namespace quanta::svc
