// Fingerprint-keyed result cache of the analysis service: repeated queries
// from heavy traffic are answered in O(1) without touching an engine.
//
// Keying: the bucket key is the 64-bit FNV-1a fingerprint of the canonical
// job key (svc/registry.h), the same accumulator the checkpoint subsystem
// uses — but a hit additionally compares the full canonical key string, so
// a fingerprint collision between structurally different queries can never
// serve the wrong result (it merely shares a bucket).
//
// Eviction: strict LRU under a byte budget. Every entry is charged its key
// plus the approximate response footprint plus a fixed bookkeeping
// overhead; inserting past the budget evicts from the cold end until the
// new entry fits. An entry larger than the whole budget is not cached.
//
// Policy (enforced by the caller, documented here): only completed results
// are inserted — a kUnknown verdict depends on the budget that truncated
// it, so caching it would let one client's tiny deadline poison another
// client's answer.
//
// Persistence (optional, DESIGN.md "Durable daemon state"): with
// enable_persistence the cache write-throughs every insert to an on-disk
// QCSEG1 segment file (ckpt::RecordLog framing; payloads are the canonical
// response wire JSON, so reloaded answers are byte-identical to what was
// served before the restart) and reloads it on boot. Disk records are
// append-only — evictions never touch disk; stale records simply re-evict
// on reload, and the segment is compacted to LRU order at boot and
// amortized during operation. Every disk write visits the FaultInjector
// site "svc.cache.persist"; any failure degrades to in-memory-only
// operation, never an outage.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ckpt/record_log.h"
#include "svc/request.h"

namespace quanta::svc {

class ResultCache {
 public:
  /// Fixed per-entry bookkeeping charge (list/map nodes, pointers).
  static constexpr std::size_t kEntryOverhead = 64;

  explicit ResultCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// Reloads the segment at `path` into the cache (oldest record first, so
  /// the hottest pre-restart entries win LRU budget contention), compacts
  /// it, and starts write-through persistence. Corrupt records are dropped
  /// individually; a torn/foreign/mismatched file degrades to an empty
  /// reload — never a failed boot. False (with *error) only when the file
  /// cannot be (re)written, in which case the cache stays memory-only.
  bool enable_persistence(const std::string& path, std::string* error);

  /// LRU-touching lookup. True iff an entry with this exact canonical key
  /// exists; *out receives a copy of the cached response.
  bool lookup(std::uint64_t fingerprint, const std::string& key,
              Response* out);

  /// Inserts (or refreshes) the entry, evicting cold entries to fit.
  void insert(std::uint64_t fingerprint, const std::string& key,
              const Response& response);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t budget = 0;
    bool persist_enabled = false;      ///< write-through currently healthy
    std::uint64_t persist_loaded = 0;  ///< entries reloaded at boot
    std::uint64_t persist_dropped = 0; ///< corrupt/unparseable records skipped
    std::uint64_t persist_appends = 0;
    std::uint64_t persist_failures = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string key;
    Response response;
    std::size_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  void evict_to_fit(std::size_t incoming);
  void persist_append_locked(const Entry& e);
  bool compact_locked(std::string* error);
  void disable_persist_locked(const char* why);

  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  Lru lru_;  ///< front = hottest, back = next eviction victim
  std::unordered_multimap<std::uint64_t, Lru::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;

  ckpt::RecordLog log_;
  std::string persist_path_;
  bool persist_healthy_ = false;
  std::uint64_t persist_loaded_ = 0;
  std::uint64_t persist_dropped_ = 0;
  std::uint64_t persist_appends_ = 0;
  std::uint64_t persist_failures_ = 0;
};

}  // namespace quanta::svc
