#include "svc/request.h"

#include <cstring>

namespace quanta::svc {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverload: return "overload";
    case Status::kBadRequest: return "bad-request";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
  }
  return "?";
}

std::optional<Status> parse_status(const std::string& s) {
  for (Status st : {Status::kOk, Status::kOverload, Status::kBadRequest,
                    Status::kShutdown, Status::kError}) {
    if (s == to_string(st)) return st;
  }
  return std::nullopt;
}

namespace {

std::optional<Priority> parse_priority(const std::string& s) {
  if (s == "high") return Priority::kHigh;
  if (s == "normal") return Priority::kNormal;
  if (s == "low") return Priority::kLow;
  return std::nullopt;
}

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

std::optional<common::Verdict> parse_verdict(const std::string& s) {
  for (auto v : {common::Verdict::kHolds, common::Verdict::kViolated,
                 common::Verdict::kUnknown}) {
    if (s == common::to_string(v)) return v;
  }
  return std::nullopt;
}

std::optional<common::StopReason> parse_stop(const std::string& s) {
  for (auto r : {common::StopReason::kCompleted, common::StopReason::kStateLimit,
                 common::StopReason::kTimeLimit, common::StopReason::kMemoryLimit,
                 common::StopReason::kCancelled, common::StopReason::kFault}) {
    if (s == common::to_string(r)) return r;
  }
  return std::nullopt;
}

/// Reads an optional strict-u64 field into *out; a present-but-malformed
/// value fails the whole request rather than silently using the default.
bool read_u64(const WireMap& m, const char* key, std::uint64_t* out,
              std::string* error) {
  if (m.get(key) == nullptr) return true;
  const auto v = m.get_u64(key);
  if (!v) {
    *error = std::string("field '") + key + "' must be a whole non-negative " +
             "decimal number";
    return false;
  }
  *out = *v;
  return true;
}

}  // namespace

std::optional<Request> parse_request(const WireMap& m, std::string* error) {
  std::string err;
  Request r;
  auto fail = [&](std::string why) -> std::optional<Request> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  if (const std::string* s = m.get("engine")) {
    r.engine = *s;
  } else {
    return fail("missing required field 'engine'");
  }
  if (const std::string* s = m.get("model")) r.model = *s;
  if (const std::string* s = m.get("query")) r.query = *s;
  if (const std::string* s = m.get("priority")) {
    const auto p = parse_priority(*s);
    if (!p) return fail("field 'priority' must be high, normal or low");
    r.priority = *p;
  }
  if (!read_u64(m, "deadline_ms", &r.deadline_ms, &err)) return fail(err);
  if (!read_u64(m, "memory_mb", &r.memory_mb, &err)) return fail(err);
  if (!read_u64(m, "runs", &r.runs, &err)) return fail(err);
  if (!read_u64(m, "seed", &r.seed, &err)) return fail(err);
  if (!read_u64(m, "ckpt_interval", &r.ckpt_interval, &err)) return fail(err);
  if (!read_u64(m, "hold_ms", &r.hold_ms, &err)) return fail(err);
  if (!read_u64(m, "throttle_us", &r.throttle_us, &err)) return fail(err);
  if (!read_u64(m, "crash_signal", &r.crash_signal, &err)) return fail(err);
  if (!read_u64(m, "rlimit_mb", &r.rlimit_mb, &err)) return fail(err);
  if (!read_u64(m, "ticket", &r.ticket, &err)) return fail(err);
  if (const std::string* s = m.get("fault")) r.fault = *s;
  if (m.get("bound") != nullptr) {
    const auto b = m.get_f64("bound");
    if (!b || !(*b > 0.0)) return fail("field 'bound' must be a positive number");
    r.bound = *b;
  }
  if (const std::string* s = m.get("resume")) r.resume = *s;
  if (const std::string* s = m.get("cache")) {
    if (*s == "0") {
      r.use_cache = false;
    } else if (*s != "1") {
      return fail("field 'cache' must be 0 or 1");
    }
  }
  if (const std::string* s = m.get("quarantine")) {
    if (*s == "0") {
      r.use_quarantine = false;
    } else if (*s != "1") {
      return fail("field 'quarantine' must be 0 or 1");
    }
  }
  if (const std::string* s = m.get("want_ticket")) {
    if (*s == "1") {
      r.want_ticket = true;
    } else if (*s != "0") {
      return fail("field 'want_ticket' must be 0 or 1");
    }
  }
  if (r.runs < 1) return fail("field 'runs' must be >= 1");
  if (r.crash_signal > 64) return fail("field 'crash_signal' must be <= 64");
  return r;
}

WireMap to_wire(const Request& r) {
  WireMap m;
  m.set("engine", r.engine);
  if (!r.model.empty()) m.set("model", r.model);
  if (!r.query.empty()) m.set("query", r.query);
  if (r.priority != Priority::kNormal) m.set("priority", to_string(r.priority));
  if (r.deadline_ms != 0) m.set_u64("deadline_ms", r.deadline_ms);
  if (r.memory_mb != 0) m.set_u64("memory_mb", r.memory_mb);
  m.set_u64("runs", r.runs);
  m.set_u64("seed", r.seed);
  m.set_f64("bound", r.bound);
  if (r.ckpt_interval != 0) m.set_u64("ckpt_interval", r.ckpt_interval);
  if (!r.resume.empty()) m.set("resume", r.resume);
  if (!r.use_cache) m.set("cache", "0");
  if (!r.use_quarantine) m.set("quarantine", "0");
  if (r.want_ticket) m.set("want_ticket", "1");
  if (r.ticket != 0) m.set_u64("ticket", r.ticket);
  if (r.hold_ms != 0) m.set_u64("hold_ms", r.hold_ms);
  if (r.throttle_us != 0) m.set_u64("throttle_us", r.throttle_us);
  if (!r.fault.empty()) m.set("fault", r.fault);
  if (r.crash_signal != 0) m.set_u64("crash_signal", r.crash_signal);
  if (r.rlimit_mb != 0) m.set_u64("rlimit_mb", r.rlimit_mb);
  return m;
}

WireMap to_wire(const Response& r) {
  WireMap m;
  m.set("status", to_string(r.status));
  if (!r.error.empty()) m.set("error", r.error);
  m.set("cached", r.cached ? "1" : "0");
  m.set("verdict", common::to_string(r.verdict));
  m.set("stop", common::to_string(r.stop));
  m.set_u64("stored", r.stored);
  m.set_u64("explored", r.explored);
  m.set_u64("transitions", r.transitions);
  m.set_i64("extra", r.extra);
  if (r.has_value) m.set_f64("value", r.value);
  if (!r.resume.empty()) m.set("resume", r.resume);
  // Only present when explicitly requested (want_ticket): everything the
  // cache stores and CI byte-diffs stays ticket-free.
  if (r.ticket != 0) m.set_u64("ticket", r.ticket);
  return m;
}

std::optional<Response> parse_response(const WireMap& m, std::string* error) {
  auto fail = [&](const char* why) -> std::optional<Response> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  Response r;
  const std::string* status = m.get("status");
  if (status == nullptr) return fail("missing 'status'");
  const auto st = parse_status(*status);
  if (!st) return fail("unknown 'status' value");
  r.status = *st;
  if (const std::string* s = m.get("error")) r.error = *s;
  if (const std::string* s = m.get("cached")) r.cached = (*s == "1");
  if (const std::string* s = m.get("verdict")) {
    const auto v = parse_verdict(*s);
    if (!v) return fail("unknown 'verdict' value");
    r.verdict = *v;
  }
  if (const std::string* s = m.get("stop")) {
    const auto v = parse_stop(*s);
    if (!v) return fail("unknown 'stop' value");
    r.stop = *v;
  }
  if (const auto v = m.get_u64("stored")) r.stored = *v;
  if (const auto v = m.get_u64("explored")) r.explored = *v;
  if (const auto v = m.get_u64("transitions")) r.transitions = *v;
  if (const auto v = m.get_i64("extra")) r.extra = *v;
  if (m.get("value") != nullptr) {
    const auto v = m.get_f64("value");
    if (!v) return fail("malformed 'value'");
    r.has_value = true;
    r.value = *v;
  }
  if (const std::string* s = m.get("resume")) r.resume = *s;
  if (const auto v = m.get_u64("ticket")) r.ticket = *v;
  return r;
}

std::size_t response_bytes(const Response& r) {
  return sizeof(Response) + r.error.size() + r.resume.size();
}

}  // namespace quanta::svc
