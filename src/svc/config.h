// Daemon sizing knobs, resolved from the QUANTAD_* environment with the
// same strict rules as QUANTA_JOBS (common::env_u64): the whole value must
// be a positive decimal number; anything else falls back to the documented
// default. Command-line flags of tools/quantad override these resolved
// values; the environment is the fleet-wide baseline.
#pragma once

#include <cstddef>

namespace quanta::svc {

/// Concurrent job-runner threads. QUANTAD_JOBS, clamp 1024; default
/// hardware_concurrency (>= 1) — the daemon's analogue of QUANTA_JOBS.
unsigned default_daemon_jobs();

/// Queued (admitted, not yet running) jobs before load-shedding rejects
/// with kOverload. QUANTAD_QUEUE_DEPTH, clamp 1'048'576; default 64.
std::size_t default_queue_depth();
inline constexpr std::size_t kDefaultQueueDepth = 64;
inline constexpr std::size_t kMaxQueueDepth = 1u << 20;

/// Result-cache byte budget. QUANTAD_CACHE_MEM (bytes), clamp 1 TiB;
/// default 64 MiB.
std::size_t default_cache_bytes();
inline constexpr std::size_t kDefaultCacheBytes = 64ull << 20;
inline constexpr std::size_t kMaxCacheBytes = 1ull << 40;

}  // namespace quanta::svc
