// Daemon sizing knobs, resolved from the QUANTAD_* environment with the
// same strict rules as QUANTA_JOBS (common::env_u64): the whole value must
// be a positive decimal number; anything else falls back to the documented
// default. Command-line flags of tools/quantad override these resolved
// values; the environment is the fleet-wide baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace quanta::svc {

/// Concurrent job-runner threads. QUANTAD_JOBS, clamp 1024; default
/// hardware_concurrency (>= 1) — the daemon's analogue of QUANTA_JOBS.
unsigned default_daemon_jobs();

/// Queued (admitted, not yet running) jobs before load-shedding rejects
/// with kOverload. QUANTAD_QUEUE_DEPTH, clamp 1'048'576; default 64.
std::size_t default_queue_depth();
inline constexpr std::size_t kDefaultQueueDepth = 64;
inline constexpr std::size_t kMaxQueueDepth = 1u << 20;

/// Result-cache byte budget. QUANTAD_CACHE_MEM (bytes), clamp 1 TiB;
/// default 64 MiB.
std::size_t default_cache_bytes();
inline constexpr std::size_t kDefaultCacheBytes = 64ull << 20;
inline constexpr std::size_t kMaxCacheBytes = 1ull << 40;

/// Process isolation for job execution. QUANTAD_ISOLATE: "0" disables the
/// worker pool (jobs run in the daemon's address space — zero dispatch
/// overhead, zero crash containment), anything else keeps the default: on.
/// This is the daemon tool's posture; the Server library defaults to
/// in-process and opts in via ServerConfig::isolate.
bool default_isolate();

/// Crash re-dispatches per job before its fingerprint is quarantined.
/// QUANTAD_RETRIES, clamp 1000; default 2 (so a fingerprint crashing
/// QUANTAD_RETRIES+1 times in one submission enters the poison list).
unsigned default_retries();
inline constexpr unsigned kDefaultRetries = 2;
inline constexpr unsigned kMaxRetries = 1000;

/// Age after which an unclaimed resume checkpoint chain is garbage
/// collected, in seconds (age = newest file of the chain). QUANTAD_CKPT_TTL,
/// clamp ~31 years; default 1 day.
std::uint64_t default_ckpt_ttl_s();
inline constexpr std::uint64_t kDefaultCkptTtlS = 24 * 60 * 60;
inline constexpr std::uint64_t kMaxCkptTtlS = 1ull << 30;

/// Durable-state directory (job journal + cache segment live here).
/// QUANTAD_STATE_DIR; default empty = durability off, the daemon is
/// amnesiac across restarts exactly like the pre-journal builds.
std::string default_state_dir();

/// Write-ahead job journaling, effective only with a state dir.
/// QUANTAD_JOURNAL: "0" disables, anything else keeps the default: on
/// (same never-weaken-on-garble rule as QUANTAD_ISOLATE).
bool default_journal();

/// Result-cache spill to disk, effective only with a state dir.
/// QUANTAD_CACHE_PERSIST: "0" disables, anything else keeps on.
bool default_cache_persist();

}  // namespace quanta::svc
