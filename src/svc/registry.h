// The analysis registry of the service: maps the (engine, model, query)
// names of a request onto the built-in `src/models` instances and the
// library entry points that answer them, producing a canonical cache key,
// its FNV-1a fingerprint (the same accumulator src/ckpt uses) and a
// runnable closure.
//
// Catalogue (engine · model family · query):
//
//   mc   · train-gate-<N> (N 2..8) · mutex        A[] at most one train crossing
//   mc   · train-gate-<N>          · reach-cross  E<> train 0 crossing
//   smc  · train-gate-<N>          · pr-cross     Pr[<= bound](<> train 0 crossing)
//   game · train-game-<N> (N 1..3) · reach-cross  TIGA reachability synthesis
//   cora · train-gate-<N>          · mincost-cross  min-cost reach (Appr/Stop rate 1)
//
// Response stats mapping (Response fields per engine):
//
//   engine | stored         | explored        | transitions      | extra          | value
//   mc     | states stored  | states explored | transitions      | 0              | —
//   smc    | 0              | completed runs  | requested runs   | hits           | p_hat
//   game   | states stored  | states explored | transitions      | winning states | —
//   cora   | states stored  | states explored | transitions      | optimal cost   | —
//
// The cache key covers exactly the inputs that determine a completed
// result: engine, model and query names (a name pins down the whole model
// — models are built in), plus runs/seed/bound for the statistical engine.
// Budgets, priorities, checkpoint cadence and debug pacing are not part of
// the key: a completed run's verdict and statistics are independent of
// them (the resume bit-identity guarantee of src/ckpt).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/budget.h"
#include "common/verdict.h"
#include "core/observer.h"
#include "svc/request.h"

namespace quanta::svc {

/// Engine-uniform outcome of one executed job.
struct JobResult {
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
  std::uint64_t stored = 0;
  std::uint64_t explored = 0;
  std::uint64_t transitions = 0;
  std::int64_t extra = 0;
  bool has_value = false;
  double value = 0.0;
  ckpt::ResumeInfo resume;
};

struct PreparedJob {
  /// Canonical "q1|engine|model|query[|params]" form; what the cache and
  /// the resume token fingerprint.
  std::string cache_key;
  /// FNV-1a digest of cache_key (ckpt::Fingerprint).
  std::uint64_t fingerprint = 0;
  /// Executes the analysis under the given budget/checkpoint policy. The
  /// observer (may be nullptr) reaches the symbolic engines only — the
  /// statistical runtime has no per-state hook. Model construction happens
  /// inside the call, so a cache hit never builds a model.
  std::function<JobResult(const common::Budget& budget,
                          const ckpt::Options& checkpoint,
                          core::ExplorationObserver* observer)>
      run;
};

/// Validates the names/params of `r` against the catalogue above. Unknown
/// engines, model families, out-of-range sizes and engine/query mismatches
/// return nullopt with a diagnostic in *error.
std::optional<PreparedJob> prepare_job(const Request& r, std::string* error);

/// Resume-token form of a job fingerprint: 16 lowercase hex digits. Shared
/// by the server (token validation) and the worker (token attachment).
std::string fingerprint_token(std::uint64_t fingerprint);

/// Canonical JobResult → Response mapping: definite verdicts require
/// completion; a budget-tripped job that saved a checkpoint carries `token`
/// back as its resume handle. Used identically by the in-process execution
/// path and the isolated worker, so both produce the same bytes.
Response response_from_result(const JobResult& jr, const std::string& token);

}  // namespace quanta::svc
