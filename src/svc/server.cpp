#include "svc/server.h"

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "ckpt/delta.h"
#include "common/fault.h"
#include "core/observer.h"
#include "svc/config.h"
#include "svc/wire.h"

namespace quanta::svc {

namespace {

Response make_error(Status status, std::string why) {
  Response r;
  r.status = status;
  r.error = std::move(why);
  return r;
}

/// The deterministic poison-list answer: every quarantine hit (live or
/// during journal replay) serves these exact bytes.
Response quarantine_response() {
  Response r;
  r.status = Status::kOk;
  r.verdict = common::Verdict::kUnknown;
  r.stop = common::StopReason::kFault;
  r.error = "quarantined: repeated worker crashes on this query";
  return r;
}

/// Debug pacing for the CI smoke and the budget-trip tests: stretches a
/// symbolic search so deadlines and SIGKILLs land mid-run (the service
/// twin of tools/ckpt_smoke's Throttle).
class Throttle final : public core::ExplorationObserver {
 public:
  explicit Throttle(std::uint64_t us) : us_(us) {}
  void on_state_explored(std::int32_t) override {
    if (us_ > 0) std::this_thread::sleep_for(std::chrono::microseconds(us_));
  }

 private:
  std::uint64_t us_;
};

}  // namespace

std::size_t gc_checkpoints(const std::string& dir, std::uint64_t ttl_s) {
  if (dir.empty() || ttl_s == 0) return 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  // Chains are aged as a unit keyed by their base path: "job-*.qckpt" plus
  // its ".dN" deltas and stray ".tmp" files. The age is the newest member's
  // mtime — an actively growing chain keeps its old base alive, while an
  // orphan (budget-tripped job whose token was never claimed) goes cold
  // everywhere at once.
  struct ChainInfo {
    std::time_t newest = 0;
    std::vector<std::string> files;
  };
  std::unordered_map<std::string, ChainInfo> chains;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("job-", 0) != 0) continue;
    const std::size_t pos = name.find(".qckpt");
    if (pos == std::string::npos) continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    ChainInfo& chain = chains[name.substr(0, pos + 6)];
    if (st.st_mtime > chain.newest) chain.newest = st.st_mtime;
    chain.files.push_back(path);
  }
  ::closedir(d);
  const std::time_t now = std::time(nullptr);
  std::size_t removed = 0;
  for (const auto& [base, chain] : chains) {
    if (now - chain.newest < static_cast<std::time_t>(ttl_s)) continue;
    for (const std::string& path : chain.files) {
      if (std::remove(path.c_str()) == 0) ++removed;
    }
  }
  return removed;
}

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.jobs == 0) cfg_.jobs = default_daemon_jobs();
  if (cfg_.queue_depth == 0) cfg_.queue_depth = default_queue_depth();
  if (cfg_.cache_bytes == 0) cfg_.cache_bytes = default_cache_bytes();
  if (cfg_.retries < 0) cfg_.retries = static_cast<int>(default_retries());
  if (cfg_.ckpt_ttl_s == 0) cfg_.ckpt_ttl_s = default_ckpt_ttl_s();
}

Server::~Server() { stop(); }

bool Server::listen_unix(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + cfg_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_fd_ < 0) {
    *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    return false;
  }
  // A SIGKILLed daemon leaves its socket file behind; rebinding over it is
  // the clean-restart path the CI smoke exercises.
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(unix_fd_, 64) < 0) {
    *error = "bind/listen " + cfg_.socket_path + ": " + std::strerror(errno);
    ::close(unix_fd_);
    unix_fd_ = -1;
    return false;
  }
  return true;
}

bool Server::listen_tcp(std::string* error) {
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_fd_ < 0) {
    *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(tcp_fd_, 64) < 0) {
    *error = "bind/listen 127.0.0.1:" + std::to_string(cfg_.tcp_port) + ": " +
             std::strerror(errno);
    ::close(tcp_fd_);
    tcp_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    tcp_port_ = ntohs(bound.sin_port);
  }
  return true;
}

bool Server::start(std::string* error) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (started_) {
    *error = "server already started";
    return false;
  }
  if (cfg_.socket_path.empty() && cfg_.tcp_port < 0) {
    *error = "no listener configured (socket_path or tcp_port)";
    return false;
  }
  if (!cfg_.ckpt_dir.empty()) {
    if (::mkdir(cfg_.ckpt_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      *error = "mkdir " + cfg_.ckpt_dir + ": " + std::strerror(errno);
      return false;
    }
  }
  if (!cfg_.socket_path.empty() && !listen_unix(error)) return false;
  if (cfg_.tcp_port >= 0 && !listen_tcp(error)) {
    if (unix_fd_ >= 0) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      ::unlink(cfg_.socket_path.c_str());
    }
    return false;
  }
  if (!cfg_.ckpt_dir.empty()) {
    // Expire chains orphaned across daemon restarts before serving anyone.
    ckpt_gc_removed_.fetch_add(gc_checkpoints(cfg_.ckpt_dir, cfg_.ckpt_ttl_s),
                               std::memory_order_relaxed);
    last_gc_ = std::chrono::steady_clock::now();
  }
  if (cfg_.isolate) {
    SupervisorConfig scfg;
    scfg.workers = cfg_.jobs;
    scfg.retries = static_cast<unsigned>(cfg_.retries);
    // Journaling hooks: poison-list transitions and worker deaths go to the
    // write-ahead journal, so a restart reconstructs the quarantine set.
    // Both no-op until setup_durable_state() opens the journal.
    scfg.quarantine_changed = [this](std::uint64_t fp, bool added) {
      std::lock_guard<std::mutex> lock(journal_mu_);
      if (journal_ == nullptr) return;
      if (added) {
        journal_->quarantine(fp);
      } else {
        journal_->clear_quarantine(fp);
      }
    };
    scfg.job_crashed = [this](std::uint64_t fp, const std::string& detail) {
      std::lock_guard<std::mutex> lock(journal_mu_);
      if (journal_ != nullptr) journal_->crash(0, fp, detail);
    };
    supervisor_ = std::make_unique<Supervisor>(scfg);
    if (!supervisor_->start(error)) {
      supervisor_.reset();
      if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        unix_fd_ = -1;
        ::unlink(cfg_.socket_path.c_str());
      }
      if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
      }
      return false;
    }
  }
  queue_ = std::make_unique<JobQueue>(JobQueue::Limits{
      cfg_.jobs, cfg_.queue_depth, cfg_.inflight_bytes});
  cache_ = std::make_unique<ResultCache>(cfg_.cache_bytes);
  setup_durable_state();
  if (unix_fd_ >= 0) {
    acceptors_.emplace_back([this, fd = unix_fd_] { accept_loop(fd); });
  }
  if (tcp_fd_ >= 0) {
    acceptors_.emplace_back([this, fd = tcp_fd_] { accept_loop(fd); });
  }
  if (!recovery_jobs_.empty()) {
    recovery_thread_ = std::thread([this] { run_recovery(); });
  } else {
    recovery_done_.store(true, std::memory_order_release);
  }
  started_ = true;
  return true;
}

void Server::setup_durable_state() {
  if (cfg_.state_dir.empty()) return;
  if (::mkdir(cfg_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr,
                 "quantad: mkdir %s: %s; continuing without durable state\n",
                 cfg_.state_dir.c_str(), std::strerror(errno));
    return;
  }
  if (cfg_.journal) {
    const std::string path = cfg_.state_dir + "/journal.qjrnl";
    JournalReplay replay = Journal::replay(path);
    if (replay.dropped > 0 || replay.torn_tail ||
        (replay.fresh && replay.note != "no log file")) {
      std::fprintf(stderr,
                   "quantad: journal %s degraded (%s, %zu records dropped)\n",
                   path.c_str(),
                   replay.note.empty() ? "recovered" : replay.note.c_str(),
                   replay.dropped);
    }
    // Compact-and-reopen before any state moves out of `replay` (open
    // serializes it back to disk). Failure costs durability, never the boot.
    auto journal = std::make_unique<Journal>();
    std::string err;
    if (journal->open(path, replay, &err)) {
      std::lock_guard<std::mutex> lock(journal_mu_);
      journal_ = std::move(journal);
    } else {
      std::fprintf(stderr,
                   "quantad: %s; continuing without journaling\n", err.c_str());
    }
    next_ticket_.store(replay.next_ticket, std::memory_order_relaxed);
    journal_replayed_.store(replay.pending.size(), std::memory_order_relaxed);
    journal_dropped_.store(replay.dropped, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(journal_mu_);
      ticket_answers_ = std::move(replay.answers);
      for (const PendingJob& job : replay.pending) {
        tickets_pending_.insert(job.ticket);
      }
    }
    if (supervisor_ != nullptr) {
      supervisor_->restore_quarantine(replay.quarantined);
    } else if (!replay.quarantined.empty()) {
      std::fprintf(stderr,
                   "quantad: %zu journaled quarantine entries ignored "
                   "(daemon runs in-process, no poison list)\n",
                   replay.quarantined.size());
    }
    recovery_jobs_ = std::move(replay.pending);
  }
  if (cfg_.cache_persist) {
    std::string err;
    if (!cache_->enable_persistence(cfg_.state_dir + "/cache.qcseg", &err)) {
      std::fprintf(stderr, "quantad: %s; cache stays in-memory-only\n",
                   err.c_str());
    }
  }
}

void Server::finish_ticket(std::uint64_t ticket, std::uint64_t fingerprint,
                           const Response& response) {
  // Store the canonical cold-run bytes: cached=0 and no ticket field, the
  // exact JSON an uninterrupted fresh run of this query would serve. A
  // --ticket fetch re-serializes with only `cached` flipped, mirroring the
  // result cache's byte-identity discipline.
  Response canon = response;
  canon.cached = false;
  canon.ticket = 0;
  const std::string json = to_wire(canon).to_json();
  std::lock_guard<std::mutex> lock(journal_mu_);
  tickets_pending_.erase(ticket);
  ticket_answers_[ticket] = json;
  while (ticket_answers_.size() > kMaxTicketAnswers) {
    ticket_answers_.erase(ticket_answers_.begin());  // oldest ticket first
  }
  if (journal_ != nullptr) journal_->complete(ticket, fingerprint, json);
}

void Server::run_recovery() {
  for (const PendingJob& pending : recovery_jobs_) {
    if (stop_.load(std::memory_order_acquire) || recovery_cancel_.cancelled()) {
      break;  // remaining jobs stay pending; the next boot resumes them
    }
    std::string error;
    const auto map = WireMap::parse_json(pending.request_json, &error);
    auto req = map ? parse_request(*map, &error) : std::optional<Request>();
    if (!req) {
      finish_ticket(
          pending.ticket, pending.fingerprint,
          make_error(Status::kError, "journaled request unreadable: " + error));
      continue;
    }
    req->hold_ms = 0;  // queue-occupancy drill knob, meaningless on replay
    const auto prepared = prepare_job(*req, &error);
    if (!prepared) {
      finish_ticket(pending.ticket, pending.fingerprint,
                    make_error(Status::kBadRequest, error));
      continue;
    }
    if (supervisor_ != nullptr && req->use_quarantine &&
        supervisor_->quarantined(prepared->fingerprint)) {
      quarantine_hits_.fetch_add(1, std::memory_order_relaxed);
      finish_ticket(pending.ticket, prepared->fingerprint,
                    quarantine_response());
      continue;
    }
    common::Budget budget;
    budget.with_cancel(&recovery_cancel_);
    if (req->deadline_ms != 0) {
      budget.with_deadline_after(std::chrono::milliseconds(req->deadline_ms));
    }
    if (req->memory_mb != 0) {
      budget.with_memory_limit(req->memory_mb << 20);
    }
    ckpt::Options checkpoint;
    if (!cfg_.ckpt_dir.empty()) {
      checkpoint.path = cfg_.ckpt_dir + "/job-" + req->engine + "-" +
                        fingerprint_token(prepared->fingerprint) + ".qckpt";
      checkpoint.interval = req->ckpt_interval;
      // Continue from whatever periodic snapshot the killed daemon managed
      // to write; a missing or torn chain degrades to a fresh start, and
      // either way src/ckpt guarantees bit-identity with an uninterrupted
      // run.
      checkpoint.resume = true;
    }
    // Replayed jobs bypass JobQueue admission: they were admitted before
    // the crash, and the supervisor slots / engine budgets still bound the
    // actual resource use. Recovery runs them one at a time behind live
    // traffic.
    const Response resp = execute_job(*req, *prepared, budget, checkpoint);
    if (resp.status == Status::kOk &&
        resp.stop == common::StopReason::kCancelled) {
      break;  // shutting down again: the job stays pending for the next boot
    }
    const bool completed = resp.status == Status::kOk &&
                           resp.stop == common::StopReason::kCompleted;
    if (req->use_cache && completed) {
      cache_->insert(prepared->fingerprint, prepared->cache_key, resp);
    }
    if (completed && checkpoint.enabled()) ckpt::remove_chain(checkpoint.path);
    finish_ticket(pending.ticket, prepared->fingerprint, resp);
    jobs_recovered_.fetch_add(1, std::memory_order_relaxed);
  }
  recovery_done_.store(true, std::memory_order_release);
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  // 0. Cancel recovery: a replayed job parks at its next budget poll (its
  //    periodic checkpoints already persisted) and stays journal-pending,
  //    so the next boot carries on from where this one let go.
  recovery_cancel_.cancel();
  // 1. Wake the acceptors: shutdown() unblocks a blocked accept(2) (close
  //    alone does not, reliably), then join and close.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  for (std::thread& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
  // 2. Cancel + drain the job queue: every session blocked on a job's
  //    promise receives its (kCancelled) result. In-flight isolated
  //    dispatches see their CancelToken fire, kill their worker and return
  //    kCancelled — so the pool is idle before step 2b kills it.
  queue_->shutdown();
  if (supervisor_ != nullptr) supervisor_->shutdown();
  // 2c. Join recovery after the queue and pool are down: its in-flight job
  //     has seen the cancel token (or its killed worker) by now.
  if (recovery_thread_.joinable()) recovery_thread_.join();
  // 3. Unblock session reads (EOF) but let queued responses flush, then
  //    join. New requests racing in were answered with status=shutdown.
  {
    std::lock_guard<std::mutex> slock(sessions_mu_);
    for (auto& s : sessions_) {
      if (!s->done.load(std::memory_order_acquire)) {
        ::shutdown(s->fd, SHUT_RD);
      }
    }
  }
  for (;;) {
    std::unique_ptr<Session> victim;
    {
      std::lock_guard<std::mutex> slock(sessions_mu_);
      if (sessions_.empty()) break;
      victim = std::move(sessions_.front());
      sessions_.pop_front();
    }
    if (victim->thread.joinable()) victim->thread.join();
    ::close(victim->fd);
  }
  if (!cfg_.socket_path.empty()) ::unlink(cfg_.socket_path.c_str());
  started_ = false;
}

void Server::reap_finished_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (stop_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down underneath us
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    reap_finished_sessions();
    try {
      common::FaultInjector::site("svc.accept");
    } catch (...) {
      // Injected accept fault: this one connection is dropped, the daemon
      // keeps serving — exactly the degradation QUANTA_FAULT CI asserts.
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    raw->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void Server::session_loop(Session* session) {
  std::string payload;
  while (!stop_.load(std::memory_order_acquire)) {
    const FrameStatus fs = read_frame(session->fd, &payload);
    if (fs != FrameStatus::kOk) {
      // kTooLarge is the one protocol error worth answering before the
      // drop — the peer is alive, merely talking garbage.
      if (fs == FrameStatus::kTooLarge) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        write_frame(session->fd,
                    to_wire(make_error(Status::kBadRequest, "frame too large"))
                        .to_json());
      }
      break;
    }
    const WireMap response = handle_payload(payload);
    if (!write_frame(session->fd, response.to_json())) break;
  }
  ::shutdown(session->fd, SHUT_RDWR);
  session->done.store(true, std::memory_order_release);
}

WireMap Server::handle_payload(const std::string& payload) {
  std::string error;
  const auto map = WireMap::parse_json(payload, &error);
  if (!map) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return to_wire(make_error(Status::kBadRequest, "malformed frame: " + error));
  }
  const auto req = parse_request(*map, &error);
  if (!req) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return to_wire(make_error(Status::kBadRequest, error));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (req->engine == "svc") return handle_builtin(*req);
  const Response resp = run_analysis(*req);
  if (resp.status == Status::kBadRequest) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
  } else if (resp.status == Status::kOverload) {
    overloads_.fetch_add(1, std::memory_order_relaxed);
  }
  return to_wire(resp);
}

WireMap Server::handle_builtin(const Request& req) {
  if (req.query == "ping" || req.query.empty()) {
    WireMap m;
    m.set("status", "ok");
    return m;
  }
  if (req.query == "result") return handle_ticket_fetch(req);
  if (req.query == "stats") {
    const Stats s = stats();
    WireMap m;
    m.set("status", "ok");
    m.set_u64("accepted", s.accepted);
    m.set_u64("accept_faults", s.accept_faults);
    m.set_u64("requests", s.requests);
    m.set_u64("bad_requests", s.bad_requests);
    m.set_u64("overloads", s.overloads);
    m.set_u64("jobs_executed", s.jobs_executed);
    m.set("isolated", s.isolated ? "1" : "0");
    m.set_u64("workers_spawned", s.supervisor.spawned);
    m.set_u64("worker_crashes", s.supervisor.crashes);
    m.set_u64("job_retries", s.supervisor.retries);
    m.set_u64("resumed_retries", s.supervisor.resumed_retries);
    m.set_u64("worker_kills", s.supervisor.kills);
    m.set_u64("quarantined", s.supervisor.quarantined);
    m.set_u64("quarantine_hits", s.quarantine_hits);
    m.set_u64("ckpt_gc_removed", s.ckpt_gc_removed);
    m.set("journaling", s.journaling ? "1" : "0");
    m.set_u64("tickets_issued", s.tickets_issued);
    m.set_u64("tickets_pending", s.tickets_pending);
    m.set_u64("ticket_answers", s.ticket_answers);
    m.set_u64("journal_appends", s.journal_appends);
    m.set_u64("journal_failures", s.journal_failures);
    m.set_u64("journal_replayed", s.journal_replayed);
    m.set_u64("journal_dropped", s.journal_dropped);
    m.set_u64("jobs_recovered", s.jobs_recovered);
    m.set("recovery_done", s.recovery_done ? "1" : "0");
    m.set("cache_persist", s.cache.persist_enabled ? "1" : "0");
    m.set_u64("cache_persist_loaded", s.cache.persist_loaded);
    m.set_u64("cache_persist_dropped", s.cache.persist_dropped);
    m.set_u64("cache_persist_failures", s.cache.persist_failures);
    m.set_u64("cache_hits", s.cache.hits);
    m.set_u64("cache_misses", s.cache.misses);
    m.set_u64("cache_entries", s.cache.entries);
    m.set_u64("cache_bytes", s.cache.bytes);
    m.set_u64("cache_evictions", s.cache.evictions);
    m.set_u64("queued", s.queue.queued);
    m.set_u64("running", s.queue.running);
    m.set_u64("rejected_queue", s.queue.rejected_queue);
    m.set_u64("rejected_memory", s.queue.rejected_memory);
    return m;
  }
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  return to_wire(make_error(Status::kBadRequest,
                            "unknown svc builtin '" + req.query + "'"));
}

WireMap Server::handle_ticket_fetch(const Request& req) {
  if (req.ticket == 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return to_wire(make_error(Status::kBadRequest,
                              "builtin 'result' requires a nonzero 'ticket'"));
  }
  std::string json;
  bool pending = false;
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    const auto it = ticket_answers_.find(req.ticket);
    if (it != ticket_answers_.end()) {
      json = it->second;
    } else {
      pending = tickets_pending_.count(req.ticket) != 0;
    }
  }
  if (!json.empty()) {
    const auto map = WireMap::parse_json(json, nullptr);
    const auto resp = map ? parse_response(*map, nullptr)
                          : std::optional<Response>();
    if (!resp) {
      return to_wire(make_error(Status::kError, "stored answer unreadable"));
    }
    // Same discipline as a cache hit: the stored canonical bytes with only
    // the `cached` flag flipped, so `cut -f3-` diffs stay byte-exact.
    Response answer = *resp;
    answer.cached = true;
    return to_wire(answer);
  }
  if (pending) {
    return to_wire(make_error(
        Status::kError, "ticket " + std::to_string(req.ticket) +
                            " is still pending (replay or execution in "
                            "progress); retry shortly"));
  }
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  return to_wire(make_error(
      Status::kBadRequest,
      "unknown ticket " + std::to_string(req.ticket) +
          " (never issued, or its answer aged out of the journal)"));
}

Response Server::run_analysis(const Request& req) {
  std::string error;
  const auto prepared = prepare_job(req, &error);
  if (!prepared) return make_error(Status::kBadRequest, error);
  if (!cfg_.enable_debug && (req.hold_ms != 0 || req.throttle_us != 0)) {
    return make_error(Status::kBadRequest,
                      "hold_ms/throttle_us require a --debug daemon");
  }
  const bool has_fault_knobs =
      !req.fault.empty() || req.crash_signal != 0 || req.rlimit_mb != 0;
  if (has_fault_knobs && !cfg_.enable_debug) {
    return make_error(Status::kBadRequest,
                      "fault/crash_signal/rlimit_mb require a --debug daemon");
  }
  if (has_fault_knobs && supervisor_ == nullptr) {
    // An in-process daemon honoring these would crash itself — the knobs
    // exist to drill the containment layer, not to bypass it.
    return make_error(Status::kBadRequest,
                      "fault/crash_signal/rlimit_mb require an isolated "
                      "daemon (QUANTAD_ISOLATE=1)");
  }

  const std::string token = fingerprint_token(prepared->fingerprint);
  ckpt::Options checkpoint;
  if (!cfg_.ckpt_dir.empty()) {
    checkpoint.path =
        cfg_.ckpt_dir + "/job-" + req.engine + "-" + token + ".qckpt";
    checkpoint.interval = req.ckpt_interval;
    checkpoint.resume = false;
    if (!req.resume.empty()) {
      if (req.resume != token) {
        return make_error(Status::kBadRequest,
                          "resume token does not match this query");
      }
      checkpoint.resume = true;
    }
  } else if (!req.resume.empty()) {
    return make_error(Status::kBadRequest,
                      "daemon runs without --ckpt-dir; resume unavailable");
  }

  if (req.use_cache) {
    Response hit;
    if (cache_->lookup(prepared->fingerprint, prepared->cache_key, &hit)) {
      hit.cached = true;
      return hit;
    }
  }

  // Poison-job gate, after the cache (a completed result predating the
  // quarantine is still perfectly good) and before admission (a crash loop
  // must cost the pool nothing). The response is deterministic: every hit
  // answers with the same bytes.
  if (supervisor_ != nullptr && req.use_quarantine &&
      supervisor_->quarantined(prepared->fingerprint)) {
    quarantine_hits_.fetch_add(1, std::memory_order_relaxed);
    return quarantine_response();
  }

  // Every job reaching execution draws a journal ticket; the admit record
  // hits disk before submission, so a SIGKILL at any later point leaves a
  // replayable trail (cache hits and quarantine answers never get here —
  // they consume no ticket, keeping the sequence deterministic for CI).
  const std::uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  tickets_issued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> jlock(journal_mu_);
    tickets_pending_.insert(ticket);
    if (journal_ != nullptr) {
      Request admit = req;
      admit.hold_ms = 0;  // queue-occupancy drill knob, meaningless on replay
      journal_->admit(ticket, prepared->fingerprint, to_wire(admit).to_json());
    }
  }

  // The job context lives on this stack frame, which blocks on the job's
  // promise below — so the runner's references stay valid for the whole
  // run, and JobQueue::shutdown() draining every admitted job guarantees
  // the wait always ends.
  common::CancelToken cancel;
  common::Budget budget;
  budget.with_cancel(&cancel);
  if (req.deadline_ms != 0) {
    budget.with_deadline_after(std::chrono::milliseconds(req.deadline_ms));
  }
  if (req.memory_mb != 0) {
    budget.with_memory_limit(req.memory_mb << 20);
  }
  std::promise<Response> done;
  std::future<Response> result = done.get_future();
  JobQueue::Job job;
  job.cancel = &cancel;
  job.mem_charge =
      req.memory_mb != 0 ? (req.memory_mb << 20) : cfg_.default_job_charge;
  job.run = [this, &req, &prepared, &budget, &checkpoint, &done, ticket] {
    {
      // Start record at actual execution (it may land after this session's
      // admit or, on an instant runner, race it — replay tolerates both).
      std::lock_guard<std::mutex> jlock(journal_mu_);
      if (journal_ != nullptr) journal_->start(ticket, prepared->fingerprint);
    }
    try {
      done.set_value(execute_job(req, *prepared, budget, checkpoint));
    } catch (...) {
      // execute_job absorbs everything an engine can throw; this is the
      // belt-and-braces path that keeps the session from deadlocking even
      // if it ever does throw.
      try {
        done.set_value(make_error(Status::kError, "internal job failure"));
      } catch (...) {
      }
    }
  };
  const Admission admission = queue_->submit(req.priority, std::move(job));
  if (admission != Admission::kAdmitted) {
    // The queue refused the job its admit record promised: retire the
    // ticket with the rejection answer so no future boot replays it.
    Response rejected =
        admission == Admission::kShutdown
            ? make_error(Status::kShutdown, "daemon is shutting down")
            : make_error(Status::kOverload, to_string(admission));
    finish_ticket(ticket, prepared->fingerprint, rejected);
    if (req.want_ticket) rejected.ticket = ticket;
    return rejected;
  }
  Response resp = result.get();
  const bool completed = resp.status == Status::kOk &&
                         resp.stop == common::StopReason::kCompleted;
  // Only completed results are cached: a kUnknown verdict depends on the
  // submitting client's budget and must never answer another client.
  // (resp is still ticket-free here, so the cache — and its on-disk
  // segment — stores the canonical cold-run bytes.)
  if (req.use_cache && completed) {
    cache_->insert(prepared->fingerprint, prepared->cache_key, resp);
  }
  if (completed) {
    // The resume token (if any) is claimed: its checkpoint chain is dead
    // weight from here on. A completed quarantine-bypass run additionally
    // proves the input no longer crash-loops.
    if (checkpoint.enabled()) ckpt::remove_chain(checkpoint.path);
    if (supervisor_ != nullptr && !req.use_quarantine) {
      supervisor_->clear_quarantine(prepared->fingerprint);
    }
  }
  if (resp.status == Status::kOk &&
      resp.stop == common::StopReason::kCancelled) {
    // Shutdown took this job down mid-run. Its ticket stays pending: the
    // admit record makes the next boot replay it to completion (resuming
    // from its last periodic checkpoint), so a graceful stop loses zero
    // accepted work.
  } else {
    finish_ticket(ticket, prepared->fingerprint, resp);
  }
  maybe_gc_checkpoints();
  if (req.want_ticket) resp.ticket = ticket;
  return resp;
}

void Server::maybe_gc_checkpoints() {
  if (cfg_.ckpt_dir.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  auto period = std::chrono::seconds(60);
  if (std::chrono::seconds(cfg_.ckpt_ttl_s) < period) {
    period = std::chrono::seconds(cfg_.ckpt_ttl_s);
  }
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    if (now - last_gc_ < period) return;
    last_gc_ = now;
  }
  ckpt_gc_removed_.fetch_add(gc_checkpoints(cfg_.ckpt_dir, cfg_.ckpt_ttl_s),
                             std::memory_order_relaxed);
}

Response Server::execute_job(const Request& req, const PreparedJob& prepared,
                             const common::Budget& budget,
                             const ckpt::Options& checkpoint) {
  // Debug hold: park the runner (cancellation-responsive) so tests can fill
  // the queue behind a deterministically busy worker.
  if (req.hold_ms != 0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(req.hold_ms);
    while (std::chrono::steady_clock::now() < until &&
           budget.poll() == common::StopReason::kCompleted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  jobs_executed_.fetch_add(1, std::memory_order_relaxed);
  const std::string token = fingerprint_token(prepared.fingerprint);
  return common::governed(
      [&]() -> Response {
        common::FaultInjector::site("svc.job.run");
        if (supervisor_ != nullptr) {
          // Isolated path: the worker owns budget polling, throttling and
          // checkpointing; the supervisor owns crash containment and retry.
          return supervisor_->execute(req, prepared.fingerprint, budget,
                                      checkpoint);
        }
        Throttle throttle(req.throttle_us);
        core::ExplorationObserver* observer =
            req.throttle_us != 0 ? &throttle : nullptr;
        return response_from_result(prepared.run(budget, checkpoint, observer),
                                    token);
      },
      [&](common::StopReason reason) {
        Response r;
        r.status = Status::kOk;
        r.verdict = common::Verdict::kUnknown;
        r.stop = reason;
        return r;
      });
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.accept_faults = accept_faults_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.overloads = overloads_.load(std::memory_order_relaxed);
  s.jobs_executed = jobs_executed_.load(std::memory_order_relaxed);
  s.quarantine_hits = quarantine_hits_.load(std::memory_order_relaxed);
  s.ckpt_gc_removed = ckpt_gc_removed_.load(std::memory_order_relaxed);
  s.isolated = supervisor_ != nullptr;
  s.tickets_issued = tickets_issued_.load(std::memory_order_relaxed);
  s.journal_replayed = journal_replayed_.load(std::memory_order_relaxed);
  s.journal_dropped = journal_dropped_.load(std::memory_order_relaxed);
  s.jobs_recovered = jobs_recovered_.load(std::memory_order_relaxed);
  s.recovery_done = recovery_done_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    s.tickets_pending = tickets_pending_.size();
    s.ticket_answers = ticket_answers_.size();
    if (journal_ != nullptr) {
      s.journaling = journal_->healthy();
      s.journal_appends = journal_->appends();
      s.journal_failures = journal_->append_failures();
    }
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  if (queue_ != nullptr) s.queue = queue_->stats();
  if (supervisor_ != nullptr) s.supervisor = supervisor_->stats();
  return s;
}

}  // namespace quanta::svc
