// Write-ahead job journal of the analysis daemon (DESIGN.md "Durable
// daemon state"). Every accepted analysis job gets a monotonically
// increasing ticket and leaves a trail of records:
//
//   admit    — the job was accepted; payload is its canonical request JSON
//   start    — a worker began executing it
//   complete — its final answer; payload is the canonical response JSON
//              (always cached=0, never carrying a ticket field, i.e. the
//              exact bytes an uninterrupted cold run would serve)
//   crash    — a worker died running this fingerprint (diagnostic trail)
//   quarantine / quarantine_clear — the supervisor poison-list transitions
//
// On boot, Journal::replay folds the trail back into state: jobs with an
// admit but no complete are re-run (resuming from their last periodic
// checkpoint via the normal resume path), recent answers become the
// --ticket lookup table, and the quarantine set is the fold of records 5/6.
// Records ride the ckpt::RecordLog framing, so a torn tail or bit-flipped
// record degrades to "drop that record" — never a failed boot, and a
// dropped admit can at worst lose one job, never resurrect a wrong answer.
//
// Journal writes sit on the response path, so every append visits the
// FaultInjector site "svc.journal.append"; any failure (injected or real)
// flips the journal unhealthy and the daemon continues in-memory-only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ckpt/record_log.h"

namespace quanta::svc {

/// Journal record types (the u8 tag of each payload).
enum class JournalRecord : std::uint8_t {
  kAdmit = 1,
  kStart = 2,
  kComplete = 3,
  kCrash = 4,
  kQuarantine = 5,
  kQuarantineClear = 6,
};

/// One job that was admitted but never completed: re-run it on boot.
struct PendingJob {
  std::uint64_t ticket = 0;
  std::uint64_t fingerprint = 0;
  bool started = false;            ///< saw a start record (purely diagnostic)
  std::string request_json;        ///< canonical request wire JSON
};

/// The folded state of one journal file.
struct JournalReplay {
  std::vector<PendingJob> pending;                    ///< ticket order
  std::map<std::uint64_t, std::string> answers;       ///< ticket → response JSON
  std::vector<std::uint64_t> quarantined;             ///< surviving fingerprints
  std::uint64_t next_ticket = 1;                      ///< max seen + 1
  std::size_t dropped = 0;   ///< corrupt/unparseable records skipped
  bool torn_tail = false;
  bool fresh = false;        ///< no usable journal (missing/foreign/mismatched)
  std::string note;
};

/// Answers retained for --ticket lookups, both in memory and across
/// compactions. Older completes age out; their cache entries may outlive
/// them, but a ticket fetch is a recovery path, not an archive.
inline constexpr std::size_t kMaxTicketAnswers = 1024;

class Journal {
 public:
  /// Folds the journal at `path` into replayable state. Never fails: any
  /// corruption degrades per the RecordLog rules, a missing or mismatched
  /// file yields `fresh` state.
  static JournalReplay replay(const std::string& path);

  /// Compacts `path` down to what `replayed` still needs (quarantine set,
  /// pending admits, the last kMaxTicketAnswers completes) and opens it for
  /// appends. False → journaling disabled; the daemon runs in-memory-only.
  bool open(const std::string& path, const JournalReplay& replayed,
            std::string* error);
  bool healthy() const { return healthy_; }

  // Append one record each. All degrade identically on failure: the
  // journal goes unhealthy (one warning on stderr), the daemon keeps
  // serving from memory. `ticket` 0 on crash records means "no specific
  // journaled job" (e.g. a recovery or bypass run).
  void admit(std::uint64_t ticket, std::uint64_t fingerprint,
             const std::string& request_json);
  void start(std::uint64_t ticket, std::uint64_t fingerprint);
  void complete(std::uint64_t ticket, std::uint64_t fingerprint,
                const std::string& response_json);
  void crash(std::uint64_t ticket, std::uint64_t fingerprint,
             const std::string& detail);
  void quarantine(std::uint64_t fingerprint);
  void clear_quarantine(std::uint64_t fingerprint);

  std::uint64_t appends() const { return appends_; }
  std::uint64_t append_failures() const { return append_failures_; }

 private:
  void append(JournalRecord type, std::uint64_t ticket,
              std::uint64_t fingerprint, const std::string& payload);

  ckpt::RecordLog log_;
  bool healthy_ = false;
  std::uint64_t appends_ = 0;
  std::uint64_t append_failures_ = 0;
};

}  // namespace quanta::svc
