#include "svc/config.h"

#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/env.h"

namespace quanta::svc {

unsigned default_daemon_jobs() {
  if (const auto v = common::env_u64("QUANTAD_JOBS", 1024)) {
    return static_cast<unsigned>(*v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t default_queue_depth() {
  if (const auto v = common::env_u64("QUANTAD_QUEUE_DEPTH", kMaxQueueDepth)) {
    return static_cast<std::size_t>(*v);
  }
  return kDefaultQueueDepth;
}

std::size_t default_cache_bytes() {
  if (const auto v = common::env_u64("QUANTAD_CACHE_MEM", kMaxCacheBytes)) {
    return static_cast<std::size_t>(*v);
  }
  return kDefaultCacheBytes;
}

bool default_isolate() {
  // Not env_u64: "0" is a meaningful value here, and anything that is not
  // exactly "0" keeps the safe default (isolation on) — a garbled value must
  // never silently strip the daemon of crash containment.
  const char* s = std::getenv("QUANTAD_ISOLATE");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

unsigned default_retries() {
  if (const auto v = common::env_u64("QUANTAD_RETRIES", kMaxRetries)) {
    return static_cast<unsigned>(*v);
  }
  return kDefaultRetries;
}

std::uint64_t default_ckpt_ttl_s() {
  if (const auto v = common::env_u64("QUANTAD_CKPT_TTL", kMaxCkptTtlS)) {
    return *v;
  }
  return kDefaultCkptTtlS;
}

std::string default_state_dir() {
  const char* s = std::getenv("QUANTAD_STATE_DIR");
  return s != nullptr ? s : "";
}

bool default_journal() {
  // Same rule as QUANTAD_ISOLATE: only an explicit "0" weakens the posture;
  // a garbled value must never silently drop restart durability.
  const char* s = std::getenv("QUANTAD_JOURNAL");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

bool default_cache_persist() {
  const char* s = std::getenv("QUANTAD_CACHE_PERSIST");
  return s == nullptr || std::strcmp(s, "0") != 0;
}

}  // namespace quanta::svc
