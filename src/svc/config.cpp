#include "svc/config.h"

#include <thread>

#include "common/env.h"

namespace quanta::svc {

unsigned default_daemon_jobs() {
  if (const auto v = common::env_u64("QUANTAD_JOBS", 1024)) {
    return static_cast<unsigned>(*v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t default_queue_depth() {
  if (const auto v = common::env_u64("QUANTAD_QUEUE_DEPTH", kMaxQueueDepth)) {
    return static_cast<std::size_t>(*v);
  }
  return kDefaultQueueDepth;
}

std::size_t default_cache_bytes() {
  if (const auto v = common::env_u64("QUANTAD_CACHE_MEM", kMaxCacheBytes)) {
    return static_cast<std::size_t>(*v);
  }
  return kDefaultCacheBytes;
}

}  // namespace quanta::svc
