// Client side of the analysis service: a connected session that frames
// requests and parses responses. One Client is one socket — calls on it
// are sequential (the protocol is strict request/response), but any number
// of Clients may talk to the same daemon concurrently.
#pragma once

#include <string>

#include "svc/request.h"
#include "svc/wire.h"

namespace quanta::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects over a Unix-domain socket / loopback TCP. False (with the
  /// reason in *error) on failure; the client is then unconnected.
  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One raw request/response round trip. False on any socket or protocol
  /// error (the connection is unusable afterwards).
  bool call(const WireMap& request, WireMap* response, std::string* error);

  /// Typed round trip: frames `req`, parses the reply into *out. False only
  /// on transport/parse failure — an unhappy Status (kOverload, ...) is a
  /// successful call whose outcome is in out->status.
  bool analyze(const Request& req, Response* out, std::string* error);

 private:
  int fd_ = -1;
};

}  // namespace quanta::svc
