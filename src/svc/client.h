// Client side of the analysis service: a connected session that frames
// requests and parses responses. One Client is one socket — calls on it
// are sequential (the protocol is strict request/response), but any number
// of Clients may talk to the same daemon concurrently.
//
// Transport failures are classified (TransportError) so callers can tell a
// daemon that is not there (kConnect) from one that died mid-answer
// (kTruncated) from a clean close (kClosed): the first two are retryable,
// a truncated frame additionally proves the peer crashed while sending.
// analyze_with_retry() builds the standard retry loop on top: exponential
// backoff with deterministic jitter, re-connecting each attempt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "svc/request.h"
#include "svc/wire.h"

namespace quanta::svc {

/// Why the last Client call failed at the transport layer.
enum class TransportError {
  kNone,       ///< no transport failure (success, or a parse error)
  kConnect,    ///< could not connect (daemon absent / not yet listening)
  kSend,       ///< request write failed
  kClosed,     ///< clean EOF before any response bytes
  kTruncated,  ///< EOF mid-frame: the daemon died while sending
  kRecv,       ///< socket error / timeout while reading the response
};

/// Short stable label ("connect", "truncated", ...) for messages and tests.
const char* transport_error_name(TransportError e);

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects over a Unix-domain socket / loopback TCP. False (with the
  /// reason in *error) on failure; the client is then unconnected.
  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Caps connect() and each socket read/write at `ms` milliseconds
  /// (0 = block forever, the default). Applies to subsequent connects.
  void set_timeout_ms(std::uint64_t ms) { timeout_ms_ = ms; }

  /// One raw request/response round trip. False on any socket or protocol
  /// error (the connection is unusable afterwards).
  bool call(const WireMap& request, WireMap* response, std::string* error);

  /// Typed round trip: frames `req`, parses the reply into *out. False only
  /// on transport/parse failure — an unhappy Status (kOverload, ...) is a
  /// successful call whose outcome is in out->status.
  bool analyze(const Request& req, Response* out, std::string* error);

  /// Classification of the most recent connect/call failure; kNone after
  /// a success or a non-transport (parse) failure.
  TransportError last_transport_error() const { return transport_error_; }

 private:
  bool finish_connect(int fd, const void* addr, std::size_t addr_len,
                      const std::string& what, std::string* error);
  bool apply_io_timeout(std::string* error);

  int fd_ = -1;
  std::uint64_t timeout_ms_ = 0;
  TransportError transport_error_ = TransportError::kNone;
};

/// Where the daemon lives: a Unix socket path, or host:port when the path
/// is empty.
struct Endpoint {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
};

struct RetryPolicy {
  unsigned retries = 0;  ///< re-attempts after the first try (0 = one shot)
  std::uint64_t timeout_ms = 0;       ///< per-attempt connect/io cap; 0 = none
  std::uint64_t backoff_base_ms = 100;
  std::uint64_t backoff_max_ms = 2000;
};

/// One analyze() with up to `policy.retries` re-attempts, reconnecting each
/// time. Retried: transport failures and kOverload / kShutdown responses
/// (the daemon may be restarting). Not retried: parse failures and every
/// other response status — those are definitive answers. Between attempts
/// sleeps min(base << attempt, max) plus deterministic jitter derived from
/// (request fingerprint, attempt), so a thundering herd of identical
/// clients still spreads out, yet a given run is reproducible. On failure
/// *transport (optional) holds the classification of the last attempt.
bool analyze_with_retry(const Endpoint& ep, const RetryPolicy& policy,
                        const Request& req, Response* out, std::string* error,
                        TransportError* transport = nullptr);

/// Polls the daemon with svc/ping until it answers or `timeout_ms` elapses.
/// Deterministic backoff (10 ms doubling to a 200 ms cap — no jitter, so CI
/// logs are reproducible); each attempt reconnects with a bounded per-call
/// timeout. True once a ping answers ok. The startup twin of the ad-hoc
/// `for i in $(seq ...); do --ping; sleep 0.1; done` loops it replaces.
bool wait_ready(const Endpoint& ep, std::uint64_t timeout_ms,
                std::string* error);

}  // namespace quanta::svc
