// Bounded job queue with priority lanes and load-shedding — the admission
// control of the analysis service, in the spirit of rippled's JobQueue:
// a server under pressure rejects deterministically at the front door
// instead of queueing itself to death.
//
// Admission (one decision, under one lock, at submit time):
//   * kQueueFull     — the number of queued (admitted, not yet running)
//                      jobs has reached `depth`;
//   * kMemoryOverload — the admitted job's memory charge would push the
//                      in-flight sum (queued + running) past
//                      `inflight_bytes`;
//   * kShutdown      — shutdown() has begun.
// Rejection never blocks and has no side effects, so overload responses
// are cheap and deterministic under any interleaving of admitted work.
//
// Execution: `workers` runner threads pop the highest non-empty lane in
// FIFO order and invoke Job::run. A job's run() owns its own error
// handling and result delivery (the server wraps engine calls in
// common::governed and fulfills a promise); the queue additionally absorbs
// any escaped exception so a faulty job can never kill a runner.
//
// Shutdown: new submissions are rejected, every admitted job's CancelToken
// is fired (a governed engine stops at its next budget poll and still
// delivers its — kCancelled — result), and the runners drain the queue to
// empty before joining. Every admitted job runs exactly once, so a session
// blocked on a job's promise is always unblocked: shutdown with jobs in
// flight cannot deadlock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "svc/request.h"

namespace quanta::svc {

/// Outcome of JobQueue::submit.
enum class Admission { kAdmitted, kQueueFull, kMemoryOverload, kShutdown };
const char* to_string(Admission a);

class JobQueue {
 public:
  struct Limits {
    unsigned workers = 1;
    std::size_t depth = 64;                                   ///< queued jobs
    std::size_t inflight_bytes = 4ull << 30;                  ///< queued+running
  };

  struct Job {
    std::function<void()> run;
    /// Fired on shutdown so in-flight engines stop at the next budget poll.
    /// Not owned; must stay valid until run() returns (the submitting
    /// session owns it and blocks on the job's result, so it does).
    common::CancelToken* cancel = nullptr;
    /// Admission charge against Limits::inflight_bytes: the job's memory
    /// budget, or the server's default charge when the request has none.
    std::size_t mem_charge = 0;
  };

  explicit JobQueue(const Limits& limits);
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  Admission submit(Priority lane, Job job);

  /// Idempotent. Blocks until the queue is drained and all runners joined.
  void shutdown();

  struct Stats {
    std::uint64_t submitted = 0;   ///< admitted jobs
    std::uint64_t executed = 0;    ///< jobs whose run() returned
    std::uint64_t rejected_queue = 0;
    std::uint64_t rejected_memory = 0;
    std::uint64_t rejected_shutdown = 0;
    std::size_t queued = 0;        ///< currently waiting
    std::size_t running = 0;       ///< currently executing
    std::size_t inflight_bytes = 0;
  };
  Stats stats() const;

 private:
  void runner_loop(unsigned id);

  const Limits limits_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> lanes_[kLaneCount];
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t inflight_bytes_ = 0;
  bool shutdown_ = false;
  Stats counters_;
  /// Cancel token of the job runner `id` is currently executing (nullptr
  /// when idle) — what shutdown() fires for the running, not just the
  /// queued, jobs.
  std::vector<common::CancelToken*> running_cancel_;
  std::vector<std::thread> runners_;  ///< last member: started in ctor
};

}  // namespace quanta::svc
