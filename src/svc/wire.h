// Wire layer of the analysis service (src/svc): length-prefixed frames over
// a stream socket, each carrying one flat JSON object of string fields.
//
// Frame format (DESIGN.md "Analysis service"):
//
//   [payload length u32 LE] [payload bytes]
//
// A frame longer than kMaxFrameBytes is a protocol error — the peer is
// shedding garbage, not a query. The payload is a single-level JSON object;
// the canonical encoder writes every value as a JSON string (field order
// preserved), and the parser additionally accepts bare numbers / true /
// false / null for hand-written clients. Nested objects and arrays are
// rejected: requests and responses are flat key/value maps by design.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace quanta::svc {

/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as a protocol error and the connection is dropped.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Order-preserving flat string map — the in-memory form of one protocol
/// message. Typed setters/getters do the number formatting uniformly
/// (doubles as shortest-round-trip "%.17g", so re-encoding is bit-stable).
class WireMap {
 public:
  void set(std::string key, std::string value);
  void set_u64(std::string key, std::uint64_t v);
  void set_i64(std::string key, std::int64_t v);
  void set_f64(std::string key, double v);

  /// nullptr when the key is absent.
  const std::string* get(const std::string& key) const;
  /// Strict u64: whole non-negative decimal, no trailing garbage.
  std::optional<std::uint64_t> get_u64(const std::string& key) const;
  std::optional<std::int64_t> get_i64(const std::string& key) const;
  std::optional<double> get_f64(const std::string& key) const;

  bool empty() const { return fields_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  /// Canonical encoding: {"k":"v",...} with all values as JSON strings.
  std::string to_json() const;
  /// Parses one flat JSON object. On failure returns nullopt and (when
  /// `error` is non-null) a human-readable reason.
  static std::optional<WireMap> parse_json(const std::string& text,
                                           std::string* error);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Why reading a frame ended. kTruncated (peer hung up mid-frame — e.g. a
/// daemon killed while replying) is kept distinct from kError (socket-level
/// failure) so retries and monitoring can tell a dying peer from a broken
/// transport.
enum class FrameStatus {
  kOk,         ///< one complete frame read
  kEof,        ///< clean end of stream at a frame boundary
  kTooLarge,   ///< length prefix exceeds kMaxFrameBytes
  kTruncated,  ///< EOF mid-frame: the peer died while sending
  kError,      ///< socket error (recv failure)
};

/// Blocking frame I/O over a connected stream socket fd. write_frame
/// returns false on any socket error (EPIPE included; callers must ignore
/// SIGPIPE or send with MSG_NOSIGNAL, which this does).
bool write_frame(int fd, const std::string& payload);
FrameStatus read_frame(int fd, std::string* payload);

}  // namespace quanta::svc
