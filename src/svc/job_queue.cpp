#include "svc/job_queue.h"

#include <algorithm>
#include <utility>

namespace quanta::svc {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kQueueFull: return "queue-full";
    case Admission::kMemoryOverload: return "memory-overload";
    case Admission::kShutdown: return "shutdown";
  }
  return "?";
}

JobQueue::JobQueue(const Limits& limits) : limits_(limits) {
  const unsigned n = std::max(1u, limits_.workers);
  running_cancel_.assign(n, nullptr);
  runners_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    runners_.emplace_back([this, i] { runner_loop(i); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

Admission JobQueue::submit(Priority lane, Job job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    ++counters_.rejected_shutdown;
    return Admission::kShutdown;
  }
  if (queued_ >= limits_.depth) {
    ++counters_.rejected_queue;
    return Admission::kQueueFull;
  }
  if (job.mem_charge > limits_.inflight_bytes - inflight_bytes_) {
    ++counters_.rejected_memory;
    return Admission::kMemoryOverload;
  }
  inflight_bytes_ += job.mem_charge;
  lanes_[static_cast<int>(lane)].push_back(std::move(job));
  ++queued_;
  ++counters_.submitted;
  cv_.notify_one();
  return Admission::kAdmitted;
}

void JobQueue::runner_loop(unsigned id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return queued_ > 0 || shutdown_; });
    if (queued_ == 0) {
      if (shutdown_) return;  // drained: runners only exit on an empty queue
      continue;
    }
    Job job;
    for (auto& lane : lanes_) {
      if (!lane.empty()) {
        job = std::move(lane.front());
        lane.pop_front();
        break;
      }
    }
    --queued_;
    ++running_;
    // A shutdown that began after the pop cancels through this slot; one
    // that began before already cancelled the job while it was queued.
    if (shutdown_ && job.cancel != nullptr) job.cancel->cancel();
    running_cancel_[id] = job.cancel;
    lock.unlock();
    try {
      job.run();
    } catch (...) {
      // Job bodies deliver their own results; an escaped exception must not
      // take the runner (and with it the daemon's capacity) down.
    }
    lock.lock();
    running_cancel_[id] = nullptr;
    --running_;
    inflight_bytes_ -= job.mem_charge;
    ++counters_.executed;
    if (shutdown_ && queued_ == 0) cv_.notify_all();
  }
}

void JobQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Cancel everything in flight: queued jobs still run, but their engines
    // stop at the first budget poll; running jobs stop at their next poll —
    // either way every admitted job delivers a result and no session
    // blocked on one can deadlock.
    for (auto& lane : lanes_) {
      for (Job& j : lane) {
        if (j.cancel != nullptr) j.cancel->cancel();
      }
    }
    for (common::CancelToken* t : running_cancel_) {
      if (t != nullptr) t->cancel();
    }
  }
  cv_.notify_all();
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.queued = queued_;
  s.running = running_;
  s.inflight_bytes = inflight_bytes_;
  return s;
}

}  // namespace quanta::svc
