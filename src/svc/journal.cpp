#include "svc/journal.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "ckpt/io.h"
#include "common/fault.h"

namespace quanta::svc {
namespace {

const ckpt::LogFormat kJournalFormat{"QJRNL1\r\n", 1};

std::vector<std::uint8_t> encode(JournalRecord type, std::uint64_t ticket,
                                 std::uint64_t fingerprint,
                                 const std::string& payload) {
  ckpt::io::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(ticket);
  w.u64(fingerprint);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

struct Decoded {
  JournalRecord type;
  std::uint64_t ticket;
  std::uint64_t fingerprint;
  std::string payload;
};

bool decode(const std::vector<std::uint8_t>& rec, Decoded* out) {
  ckpt::io::Reader r(rec);
  const std::uint8_t type = r.u8();
  out->ticket = r.u64();
  out->fingerprint = r.u64();
  const std::uint32_t len = r.u32();
  if (!r.ok() || !r.fits(len, 1) || r.remaining() != len) return false;
  out->payload.assign(reinterpret_cast<const char*>(rec.data()) +
                          (rec.size() - len),
                      len);
  if (type < static_cast<std::uint8_t>(JournalRecord::kAdmit) ||
      type > static_cast<std::uint8_t>(JournalRecord::kQuarantineClear)) {
    return false;
  }
  out->type = static_cast<JournalRecord>(type);
  return true;
}

}  // namespace

JournalReplay Journal::replay(const std::string& path) {
  JournalReplay out;
  std::vector<std::vector<std::uint8_t>> records;
  const ckpt::LogScanStats scan = ckpt::scan_log(path, kJournalFormat, &records);
  out.dropped = scan.dropped;
  out.torn_tail = scan.torn_tail;
  out.fresh = scan.fresh;
  out.note = scan.note;
  if (scan.fresh) return out;

  // Fold in append order: later records win (a complete retires its admit,
  // a clear retires its quarantine).
  std::unordered_map<std::uint64_t, PendingJob> open_jobs;
  std::vector<std::uint64_t> admit_order;
  std::vector<std::uint64_t> quarantine_order;  // insertion order, deduped
  std::unordered_set<std::uint64_t> quarantined;
  for (const auto& rec : records) {
    Decoded d;
    if (!decode(rec, &d)) {
      ++out.dropped;
      continue;
    }
    if (d.ticket >= out.next_ticket) out.next_ticket = d.ticket + 1;
    switch (d.type) {
      case JournalRecord::kAdmit: {
        PendingJob job;
        job.ticket = d.ticket;
        job.fingerprint = d.fingerprint;
        job.request_json = d.payload;
        if (open_jobs.emplace(d.ticket, std::move(job)).second) {
          admit_order.push_back(d.ticket);
        }
        break;
      }
      case JournalRecord::kStart: {
        auto it = open_jobs.find(d.ticket);
        if (it != open_jobs.end()) it->second.started = true;
        break;
      }
      case JournalRecord::kComplete:
        open_jobs.erase(d.ticket);
        out.answers[d.ticket] = d.payload;
        break;
      case JournalRecord::kCrash:
        break;  // diagnostic trail only; retry/quarantine records decide
      case JournalRecord::kQuarantine:
        if (quarantined.insert(d.fingerprint).second) {
          quarantine_order.push_back(d.fingerprint);
        }
        break;
      case JournalRecord::kQuarantineClear:
        quarantined.erase(d.fingerprint);
        break;
    }
  }
  for (std::uint64_t ticket : admit_order) {
    auto it = open_jobs.find(ticket);
    if (it != open_jobs.end()) out.pending.push_back(it->second);
  }
  for (std::uint64_t fp : quarantine_order) {
    if (quarantined.count(fp) != 0) out.quarantined.push_back(fp);
  }
  while (out.answers.size() > kMaxTicketAnswers) {
    out.answers.erase(out.answers.begin());  // oldest ticket first
  }
  return out;
}

bool Journal::open(const std::string& path, const JournalReplay& replayed,
                   std::string* error) {
  healthy_ = false;
  // Compact before appending: boot is the one moment the full fold is in
  // hand, and it bounds journal growth to live state + this session's
  // appends. The atomic rewrite keeps the old journal on any failure.
  std::vector<std::vector<std::uint8_t>> compacted;
  for (std::uint64_t fp : replayed.quarantined) {
    compacted.push_back(encode(JournalRecord::kQuarantine, 0, fp, ""));
  }
  for (const auto& [ticket, json] : replayed.answers) {
    compacted.push_back(encode(JournalRecord::kComplete, ticket, 0, json));
  }
  for (const PendingJob& job : replayed.pending) {
    compacted.push_back(encode(JournalRecord::kAdmit, job.ticket,
                               job.fingerprint, job.request_json));
  }
  try {
    common::FaultInjector::site("svc.journal.append");
    if (!ckpt::rewrite_log(path, kJournalFormat, compacted,
                           "svc.journal.append")) {
      if (error != nullptr) *error = "journal compaction failed: " + path;
      return false;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("journal compaction failed: ") + e.what();
    }
    return false;
  }
  if (!log_.open(path, kJournalFormat, error)) return false;
  healthy_ = true;
  return true;
}

void Journal::append(JournalRecord type, std::uint64_t ticket,
                     std::uint64_t fingerprint, const std::string& payload) {
  if (!healthy_) return;
  bool ok = false;
  try {
    common::FaultInjector::site("svc.journal.append");
    ok = log_.append(encode(type, ticket, fingerprint, payload));
  } catch (const std::exception&) {
    ok = false;
  }
  if (ok) {
    ++appends_;
    return;
  }
  ++append_failures_;
  healthy_ = false;
  log_.close();
  std::fprintf(stderr,
               "quantad: journal append failed; continuing without "
               "journaling (completed work is no longer restart-durable)\n");
}

void Journal::admit(std::uint64_t ticket, std::uint64_t fingerprint,
                    const std::string& request_json) {
  append(JournalRecord::kAdmit, ticket, fingerprint, request_json);
}

void Journal::start(std::uint64_t ticket, std::uint64_t fingerprint) {
  append(JournalRecord::kStart, ticket, fingerprint, "");
}

void Journal::complete(std::uint64_t ticket, std::uint64_t fingerprint,
                       const std::string& response_json) {
  append(JournalRecord::kComplete, ticket, fingerprint, response_json);
}

void Journal::crash(std::uint64_t ticket, std::uint64_t fingerprint,
                    const std::string& detail) {
  append(JournalRecord::kCrash, ticket, fingerprint, detail);
}

void Journal::quarantine(std::uint64_t fingerprint) {
  append(JournalRecord::kQuarantine, 0, fingerprint, "");
}

void Journal::clear_quarantine(std::uint64_t fingerprint) {
  append(JournalRecord::kQuarantineClear, 0, fingerprint, "");
}

}  // namespace quanta::svc
