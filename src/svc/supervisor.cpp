#include "svc/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <thread>
#include <utility>

#include "svc/wire.h"
#include "svc/worker.h"

namespace quanta::svc {

namespace {

/// Human description of a waitpid status for crash-response error fields.
std::string describe_exit(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return "died";
}

Response cancelled_response() {
  Response r;
  r.status = Status::kOk;
  r.verdict = common::Verdict::kUnknown;
  r.stop = common::StopReason::kCancelled;
  return r;
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  slots_.resize(cfg_.workers);
}

Supervisor::~Supervisor() { shutdown(); }

bool Supervisor::start(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (!spawn(&slot)) {
      if (error != nullptr) {
        *error = std::string("could not fork worker: ") + std::strerror(errno);
      }
      return false;
    }
  }
  started_ = true;
  return true;
}

void Supervisor::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  slot_free_.notify_all();
  for (Slot& slot : slots_) {
    if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, nullptr, 0);
      slot.pid = -1;
    }
    if (slot.fd >= 0) {
      ::close(slot.fd);
      slot.fd = -1;
    }
  }
  started_ = false;
}

bool Supervisor::spawn(Slot* slot) {
  int sp[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sp[0]);
    ::close(sp[1]);
    return false;
  }
  if (pid == 0) {
    // Child: nothing of the daemon survives here but the job pipe. _exit
    // (not exit) so the daemon's atexit/stdio state is never run twice.
    ::close(sp[0]);
    worker_process_init(sp[1]);
    ::_exit(worker_main(sp[1]));
  }
  ::close(sp[1]);
  slot->pid = pid;
  slot->fd = sp[0];
  spawned_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Supervisor::ensure_worker(Slot* slot) {
  if (slot->pid > 0) return true;
  if (slot->consecutive_crashes > 0) {
    // Exponential backoff before the respawn: a crash-looping input (or a
    // broken toolchain) must not turn the pool into a fork storm.
    const unsigned shift =
        slot->consecutive_crashes < 10 ? slot->consecutive_crashes - 1 : 9;
    auto delay = cfg_.backoff_base * (1u << shift);
    if (delay > cfg_.backoff_max) delay = cfg_.backoff_max;
    std::this_thread::sleep_for(delay);
  }
  return spawn(slot);
}

void Supervisor::reap(Slot* slot, std::string* detail) {
  if (slot->fd >= 0) {
    ::close(slot->fd);
    slot->fd = -1;
  }
  if (slot->pid > 0) {
    int status = 0;
    if (::waitpid(slot->pid, &status, 0) == slot->pid) {
      *detail = describe_exit(status);
    } else {
      *detail = "died (unreapable)";
    }
    slot->pid = -1;
  }
  ++slot->consecutive_crashes;
}

void Supervisor::kill_and_reap(Slot* slot, std::string* detail) {
  if (slot->pid > 0) ::kill(slot->pid, SIGKILL);
  reap(slot, detail);
  // A deliberate kill is not a worker defect; don't penalize the respawn.
  if (slot->consecutive_crashes > 0) --slot->consecutive_crashes;
  kills_.fetch_add(1, std::memory_order_relaxed);
}

Supervisor::Slot* Supervisor::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire) || !started_) return nullptr;
    for (Slot& slot : slots_) {
      if (!slot.busy) {
        slot.busy = true;
        return &slot;
      }
    }
    slot_free_.wait(lock);
  }
}

void Supervisor::release(Slot* slot, bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  slot->busy = false;
  if (healthy) slot->consecutive_crashes = 0;
  slot_free_.notify_one();
}

Supervisor::DispatchOutcome Supervisor::dispatch(Slot* slot,
                                                 const std::string& frame,
                                                 const common::Budget& budget,
                                                 std::uint64_t deadline_ms) {
  DispatchOutcome out;
  auto crashed = [&](std::string detail) {
    out.kind = DispatchOutcome::Kind::kCrashed;
    out.detail = std::move(detail);
    return out;
  };

  if (!ensure_worker(slot)) return crashed("could not be spawned");
  if (!write_frame(slot->fd, frame)) {
    // The worker died idle (a chaos kill between jobs): the job never
    // started, so one silent respawn-and-resend does not burn a retry.
    std::string detail;
    reap(slot, &detail);
    if (!ensure_worker(slot) || !write_frame(slot->fd, frame)) {
      return crashed(detail);
    }
  }

  const bool has_deadline = deadline_ms != 0;
  const auto grace_at = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms) +
                        cfg_.kill_grace;
  std::string detail;
  for (;;) {
    pollfd p{};
    p.fd = slot->fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      kill_and_reap(slot, &detail);
      return crashed("lost its pipe (poll: " + std::string(std::strerror(errno)) +
                     ")");
    }
    if (rc > 0) {
      std::string payload;
      const FrameStatus fs = read_frame(slot->fd, &payload);
      if (fs == FrameStatus::kOk) {
        std::string error;
        const auto map = WireMap::parse_json(payload, &error);
        const auto resp =
            map ? parse_response(*map, &error) : std::optional<Response>();
        if (!resp) {
          kill_and_reap(slot, &detail);
          return crashed("sent a garbled reply (" + error + ")");
        }
        out.kind = DispatchOutcome::Kind::kReplied;
        out.response = *resp;
        return out;
      }
      // EOF (clean or mid-frame) or a pipe error: the worker is gone.
      reap(slot, &detail);
      return crashed(detail);
    }
    // Poll tick: shutdown / cancellation / hang backstop.
    if (shutdown_.load(std::memory_order_acquire)) {
      kill_and_reap(slot, &detail);
      out.kind = DispatchOutcome::Kind::kCancelled;
      return out;
    }
    const common::CancelToken* cancel = budget.cancel_token();
    if (cancel != nullptr && cancel->cancelled()) {
      kill_and_reap(slot, &detail);
      out.kind = DispatchOutcome::Kind::kCancelled;
      return out;
    }
    if (has_deadline && std::chrono::steady_clock::now() > grace_at) {
      kill_and_reap(slot, &detail);
      return crashed("hung past its deadline grace and was killed");
    }
  }
}

Response Supervisor::execute(const Request& req, std::uint64_t fingerprint,
                             const common::Budget& budget,
                             const ckpt::Options& checkpoint) {
  // hold_ms is a parent-side queue-occupancy knob (see Server::execute_job);
  // it never ships to the worker.
  Request job = req;
  job.hold_ms = 0;
  ckpt::Options ck = checkpoint;
  unsigned crashes = 0;
  for (;;) {
    Slot* slot = acquire();
    if (slot == nullptr) return cancelled_response();
    const std::string frame =
        make_job_frame(job, ck.path, ck.resume).to_json();
    DispatchOutcome out = dispatch(slot, frame, budget, job.deadline_ms);
    release(slot, out.kind == DispatchOutcome::Kind::kReplied);
    switch (out.kind) {
      case DispatchOutcome::Kind::kReplied:
        return out.response;
      case DispatchOutcome::Kind::kCancelled:
        return cancelled_response();
      case DispatchOutcome::Kind::kCrashed:
        break;
    }
    ++crashes;
    crashes_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.job_crashed) cfg_.job_crashed(fingerprint, out.detail);
    if (shutdown_.load(std::memory_order_acquire)) return cancelled_response();
    if (crashes > cfg_.retries) {
      bool inserted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        inserted = quarantine_.insert(fingerprint).second;
      }
      if (inserted && cfg_.quarantine_changed) {
        cfg_.quarantine_changed(fingerprint, true);
      }
      Response r;
      r.status = Status::kOk;
      r.verdict = common::Verdict::kUnknown;
      r.stop = common::StopReason::kFault;
      r.error = "worker " + out.detail + "; query quarantined after " +
                std::to_string(crashes) + " crashes";
      return r;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (ck.enabled()) {
      // Resume whatever chain the dead worker left behind: retry cost is
      // the work since the last periodic snapshot, not the whole job. A
      // missing or torn chain degrades to a fresh start inside the worker.
      ck.resume = true;
      resumed_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool Supervisor::quarantined(std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_.count(fingerprint) != 0;
}

bool Supervisor::clear_quarantine(std::uint64_t fingerprint) {
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erased = quarantine_.erase(fingerprint) != 0;
  }
  if (erased && cfg_.quarantine_changed) {
    cfg_.quarantine_changed(fingerprint, false);
  }
  return erased;
}

void Supervisor::restore_quarantine(
    const std::vector<std::uint64_t>& fingerprints) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_.insert(fingerprints.begin(), fingerprints.end());
}

Supervisor::Stats Supervisor::stats() const {
  Stats s;
  s.spawned = spawned_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.resumed_retries = resumed_retries_.load(std::memory_order_relaxed);
  s.kills = kills_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.quarantined = quarantine_.size();
  return s;
}

}  // namespace quanta::svc
