// svc::Supervisor — the crash-containment layer between the server's job
// runners and the engines: a prefork pool of worker processes, one job per
// worker at a time, dispatched over socketpair pipes with svc::wire frames.
//
// Containment contract (DESIGN.md "Supervision tree"):
//
//   * A worker death mid-job — SIGSEGV, SIGABRT, SIGKILL, rlimit OOM —
//     surfaces to the supervisor as EOF before the response frame. Only
//     that job is affected; every other in-flight job keeps its own worker
//     and completes bit-identically to a calm run.
//   * The dead worker is reaped (waitpid, signal decoded for the error
//     message) and its slot respawned lazily with exponential backoff
//     (base * 2^consecutive-crashes, capped), so a crash storm cannot turn
//     into a fork storm.
//   * The crashed job is re-dispatched up to `retries` times, with the
//     checkpoint policy flipped to resume: each retry continues from the
//     last periodic snapshot the dead worker managed to write, so retry
//     cost is incremental, not quadratic.
//   * After retries+1 crashes in one submission the job's fingerprint
//     enters the poison list; the server answers it with a deterministic
//     kFault response without touching the pool until a quarantine-bypass
//     run (request field quarantine=0) completes cleanly.
//
// The supervisor never kills a worker for exceeding its *budget* — budgets
// are cooperative and the worker replies kUnknown on its own. Kills happen
// only for cancellation (daemon shutdown), or as a hang backstop when a
// worker stays silent past its deadline plus a generous grace.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/budget.h"
#include "svc/request.h"

namespace quanta::svc {

struct SupervisorConfig {
  unsigned workers = 1;  ///< pool size; the server uses its runner count
  unsigned retries = 2;  ///< crash re-dispatches per job before quarantine
  std::chrono::milliseconds backoff_base{5};
  std::chrono::milliseconds backoff_max{250};
  /// Hang backstop: a worker silent past job deadline + grace is killed
  /// and the death handled like any other crash. Jobs without a deadline
  /// are never killed (cancellation still reaches them).
  std::chrono::milliseconds kill_grace{30000};
  /// Journaling hooks (both optional, both invoked outside mu_ so they may
  /// take their own locks). quarantine_changed fires on every poison-list
  /// transition (`added` true = quarantined, false = cleared by a bypass);
  /// job_crashed fires once per observed worker death with its description.
  std::function<void(std::uint64_t fingerprint, bool added)> quarantine_changed;
  std::function<void(std::uint64_t fingerprint, const std::string& detail)>
      job_crashed;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig cfg);
  ~Supervisor();  ///< calls shutdown()
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Preforks the pool. False (reason in *error) if no worker could be
  /// spawned; the supervisor is then inert.
  bool start(std::string* error);
  /// Kills and reaps every worker, wakes blocked acquirers. Idempotent.
  /// The server drains its job queue first, so no dispatch is in flight.
  void shutdown();

  /// Runs one admitted job in the pool, blocking until a response, a
  /// cancellation, or quarantine. Crash containment and retry-with-resume
  /// happen inside; the caller sees exactly one well-formed Response.
  Response execute(const Request& req, std::uint64_t fingerprint,
                   const common::Budget& budget,
                   const ckpt::Options& checkpoint);

  bool quarantined(std::uint64_t fingerprint) const;
  /// Removes a fingerprint from the poison list (a bypass run completed).
  /// True iff the fingerprint was actually quarantined; fires
  /// quarantine_changed only on that transition.
  bool clear_quarantine(std::uint64_t fingerprint);
  /// Seeds the poison list from a journal replay (boot only, before any
  /// traffic). Deliberately silent: these entries are already journaled.
  void restore_quarantine(const std::vector<std::uint64_t>& fingerprints);

  struct Stats {
    std::uint64_t spawned = 0;         ///< workers forked over the lifetime
    std::uint64_t crashes = 0;         ///< worker deaths observed mid-job
    std::uint64_t retries = 0;         ///< crash re-dispatches issued
    std::uint64_t resumed_retries = 0; ///< re-dispatches with a resume chain
    std::uint64_t kills = 0;           ///< workers killed (cancel/hang)
    std::uint64_t quarantined = 0;     ///< fingerprints currently poisoned
  };
  Stats stats() const;

 private:
  struct Slot {
    pid_t pid = -1;
    int fd = -1;  ///< supervisor end of the job pipe
    bool busy = false;
    unsigned consecutive_crashes = 0;  ///< drives the respawn backoff
  };

  struct DispatchOutcome {
    enum class Kind { kReplied, kCrashed, kCancelled };
    Kind kind = Kind::kCrashed;
    Response response;
    std::string detail;  ///< kCrashed: how the worker died
  };

  Slot* acquire();
  void release(Slot* slot, bool healthy);
  bool spawn(Slot* slot);
  bool ensure_worker(Slot* slot);
  /// Closes the pipe, waits for the corpse, describes the death in *detail.
  void reap(Slot* slot, std::string* detail);
  void kill_and_reap(Slot* slot, std::string* detail);
  DispatchOutcome dispatch(Slot* slot, const std::string& frame,
                           const common::Budget& budget,
                           std::uint64_t deadline_ms);

  SupervisorConfig cfg_;
  std::vector<Slot> slots_;
  std::atomic<bool> shutdown_{false};
  bool started_ = false;

  mutable std::mutex mu_;  ///< slots' busy flags, quarantine set, lifecycle
  std::condition_variable slot_free_;
  std::unordered_set<std::uint64_t> quarantine_;

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> resumed_retries_{0};
  std::atomic<std::uint64_t> kills_{0};
};

}  // namespace quanta::svc
