#include "svc/registry.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/pred.h"
#include "cora/priced.h"
#include "game/tiga.h"
#include "mc/reachability.h"
#include "models/train_game.h"
#include "models/train_gate.h"
#include "smc/estimate.h"
#include "smc/simulator.h"

namespace quanta::svc {

namespace {

/// "train-gate-4" → family "train-gate", size 4. Sizes are bounded so a
/// request cannot ask the daemon to build an astronomically large model.
struct ModelName {
  std::string family;
  int size = 0;
};

std::optional<ModelName> parse_model(const std::string& name) {
  const std::size_t dash = name.rfind('-');
  if (dash == std::string::npos || dash + 1 >= name.size()) return std::nullopt;
  int size = 0;
  for (std::size_t i = dash + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    size = size * 10 + (name[i] - '0');
    if (size > 99) return std::nullopt;
  }
  return ModelName{name.substr(0, dash), size};
}

/// The paper's mutual-exclusion property, labeled exactly as the ckpt_smoke
/// driver labels it so service and CLI runs share checkpoint fingerprints.
mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  return common::labeled_pred<ta::SymState>(
      "train-gate-mutex", [trains, cross_loc](const ta::SymState& s) {
        int crossing = 0;
        for (std::size_t i = 0; i < trains.size(); ++i) {
          if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
            ++crossing;
          }
        }
        return crossing <= 1;
      });
}

JobResult from_search(common::Verdict verdict, const core::SearchStats& stats,
                      std::int64_t extra, const ckpt::ResumeInfo& resume) {
  JobResult out;
  out.verdict = verdict;
  out.stop = stats.stop;
  out.stored = stats.states_stored;
  out.explored = stats.states_explored;
  out.transitions = stats.transitions;
  out.extra = extra;
  out.resume = resume;
  return out;
}

}  // namespace

std::optional<PreparedJob> prepare_job(const Request& r, std::string* error) {
  auto fail = [&](std::string why) -> std::optional<PreparedJob> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  const auto model = parse_model(r.model);
  if (!model) {
    return fail("unknown model '" + r.model +
                "' (expected train-gate-<N> or train-game-<N>)");
  }

  PreparedJob job;
  job.cache_key = "q1|" + r.engine + "|" + r.model + "|" + r.query;

  if (r.engine == "mc" || r.engine == "cora" || r.engine == "smc") {
    if (model->family != "train-gate") {
      return fail("engine '" + r.engine + "' serves train-gate-<N> models");
    }
    if (model->size < 2 || model->size > 8) {
      return fail("train-gate size must be in [2, 8]");
    }
  } else if (r.engine == "game") {
    if (model->family != "train-game") {
      return fail("engine 'game' serves train-game-<N> models");
    }
    if (model->size < 1 || model->size > 3) {
      return fail("train-game size must be in [1, 3]");
    }
  } else {
    return fail("unknown engine '" + r.engine +
                "' (expected mc, smc, game or cora)");
  }

  const int n = model->size;
  if (r.engine == "mc") {
    if (r.query != "mutex" && r.query != "reach-cross") {
      return fail("mc queries: mutex, reach-cross");
    }
    const bool invariant = (r.query == "mutex");
    job.run = [n, invariant](const common::Budget& budget,
                             const ckpt::Options& checkpoint,
                             core::ExplorationObserver* observer) {
      auto tg = models::make_train_gate(n);
      mc::ReachOptions opts;
      opts.record_trace = false;
      opts.observer = observer;
      opts.limits.budget = budget;
      opts.checkpoint = checkpoint;
      if (invariant) {
        const auto res =
            mc::check_invariant(tg.system, mutual_exclusion(tg), opts);
        return from_search(res.verdict, res.stats, 0, res.resume);
      }
      const int cross =
          tg.system.process(tg.trains[0]).location_index("Cross");
      const auto goal =
          common::loc_index_pred<ta::SymState>(tg.trains[0], cross);
      const auto res = mc::reachable(tg.system, goal, opts);
      return from_search(res.verdict, res.stats, 0, res.resume);
    };
  } else if (r.engine == "smc") {
    if (r.query != "pr-cross") return fail("smc queries: pr-cross");
    char bound[64];
    std::snprintf(bound, sizeof(bound), "%.17g", r.bound);
    job.cache_key += "|runs=" + std::to_string(r.runs) +
                     "|seed=" + std::to_string(r.seed) + "|bound=" + bound;
    const std::uint64_t runs = r.runs;
    const std::uint64_t seed = r.seed;
    const double time_bound = r.bound;
    job.run = [n, runs, seed, time_bound](const common::Budget& budget,
                                          const ckpt::Options& checkpoint,
                                          core::ExplorationObserver*) {
      auto tg = models::make_train_gate(n);
      const int cross =
          tg.system.process(tg.trains[0]).location_index("Cross");
      smc::TimeBoundedReach prop;
      prop.time_bound = time_bound;
      prop.goal =
          common::loc_index_pred<ta::ConcreteState>(tg.trains[0], cross);
      const auto est = smc::estimate_probability_runs(
          tg.system, prop, runs, /*alpha=*/0.05, seed, budget, checkpoint);
      JobResult out;
      out.verdict = est.verdict;
      out.stop = est.stop;
      out.explored = est.completed;
      out.transitions = est.runs;
      out.extra = static_cast<std::int64_t>(est.hits);
      out.has_value = true;
      out.value = est.p_hat;
      out.resume = est.resume;
      return out;
    };
  } else if (r.engine == "game") {
    if (r.query != "reach-cross") return fail("game queries: reach-cross");
    job.run = [n](const common::Budget& budget,
                  const ckpt::Options& checkpoint,
                  core::ExplorationObserver* observer) {
      // Reachability objectives need train 0 already approaching — from
      // all-Safe the environment may simply never send a train.
      auto tg = models::make_train_game(
          {.num_trains = n, .first_train_approaching = true});
      const auto goal =
          common::loc_index_pred<ta::DigitalState>(tg.trains[0], tg.l_cross);
      core::SearchLimits limits;
      limits.budget = budget;
      game::TimedGame g(tg.system, limits, checkpoint, observer);
      const auto res = g.solve_reachability(goal);
      return from_search(res.verdict, res.stats,
                         static_cast<std::int64_t>(res.winning_states),
                         res.resume);
    };
  } else {  // cora
    if (r.query != "mincost-cross") return fail("cora queries: mincost-cross");
    job.run = [n](const common::Budget& budget,
                  const ckpt::Options& checkpoint,
                  core::ExplorationObserver* observer) {
      auto tg = models::make_train_gate(n);
      cora::PriceModel prices(tg.system);
      for (int t : tg.trains) {
        const auto& proc = tg.system.process(t);
        prices.set_location_rate(t, proc.location_index("Appr"), 1);
        prices.set_location_rate(t, proc.location_index("Stop"), 1);
      }
      const int cross =
          tg.system.process(tg.trains[0]).location_index("Cross");
      const auto goal =
          common::loc_index_pred<ta::DigitalState>(tg.trains[0], cross);
      cora::MinCostOptions opts;
      opts.limits.budget = budget;
      opts.checkpoint = checkpoint;
      opts.observer = observer;
      const auto res = cora::min_cost_reachability(tg.system, prices, goal, opts);
      return from_search(res.verdict, res.stats, res.cost, res.resume);
    };
  }

  job.fingerprint = ckpt::Fingerprint().mix_str(job.cache_key).digest();
  return job;
}

std::string fingerprint_token(std::uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

Response response_from_result(const JobResult& jr, const std::string& token) {
  Response r;
  r.status = Status::kOk;
  r.verdict = jr.verdict;
  r.stop = jr.stop;
  r.stored = jr.stored;
  r.explored = jr.explored;
  r.transitions = jr.transitions;
  r.extra = jr.extra;
  r.has_value = jr.has_value;
  r.value = jr.value;
  // A saved snapshot turns the kUnknown verdict into a resumable job: the
  // client re-submits the same query with this token to continue it.
  if (jr.resume.saved && jr.verdict == common::Verdict::kUnknown) {
    r.resume = token;
  }
  return r;
}

}  // namespace quanta::svc
