// Request/response vocabulary of the analysis service: the typed form of
// one wire message, its validation rules, and the deterministic response
// serialization that makes "served from cache" bit-identical to "freshly
// computed" (everything but the `cached` flag).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/verdict.h"
#include "svc/wire.h"

namespace quanta::svc {

/// Outcome class of one request, the first field of every response.
enum class Status {
  kOk,          ///< the analysis ran (or was served from cache)
  kOverload,    ///< load-shedding rejected the job (queue/memory admission)
  kBadRequest,  ///< malformed or unknown engine/model/query/params
  kShutdown,    ///< the daemon is stopping; resubmit elsewhere/later
  kError,       ///< internal failure (the daemon itself stays up)
};

const char* to_string(Status s);
std::optional<Status> parse_status(const std::string& s);

/// Queue lanes, highest first. The wire value is "high"/"normal"/"low".
enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };

inline constexpr int kLaneCount = 3;

/// One analysis request. Wire fields (all optional unless noted):
///   engine (required)   mc | smc | game | cora | svc (builtins)
///   model  (required*)  a src/models registry name, e.g. "train-gate-4"
///   query  (required*)  engine-specific query name, e.g. "mutex"
///   priority            high | normal | low (default normal)
///   deadline_ms         wall-clock budget for the job (0 = none)
///   memory_mb           memory ceiling for the job (0 = none)
///   runs, seed, bound   smc sample size / RNG seed / time bound
///   ckpt_interval       periodic snapshot cadence (engine progress units)
///   resume              resume token from a previous budget-tripped reply
///   cache               "0" bypasses the result cache (lookup and insert)
///   quarantine          "0" bypasses the poison-job list: the query runs
///                       even when quarantined, and a clean completion
///                       clears its quarantine entry
///   want_ticket         "1" asks a journaling daemon to return this job's
///                       journal ticket (see svc/journal.h); answers stay
///                       byte-identical to ticketless traffic otherwise
///   ticket              for engine "svc" query "result": fetch the stored
///                       answer of a previously journaled job by its ticket
///   hold_ms, throttle_us  debug-only pacing knobs (--debug daemons)
///   fault               debug-only QUANTA_FAULT spec armed inside the
///                       worker process for this one job (crash drills)
///   crash_signal        debug-only: worker raises this signal at job start
///   rlimit_mb           debug-only: worker sets RLIMIT_AS to this many MiB
///                       before running the job (OOM drills)
/// The three fault knobs require both --debug and an isolated daemon; an
/// in-process daemon rejects them rather than crash itself.
/// (*) not required for engine "svc" builtins ("stats", "ping").
struct Request {
  std::string engine;
  std::string model;
  std::string query;
  Priority priority = Priority::kNormal;
  std::uint64_t deadline_ms = 0;
  std::uint64_t memory_mb = 0;
  std::uint64_t runs = 2000;
  std::uint64_t seed = 1;
  double bound = 100.0;
  std::uint64_t ckpt_interval = 0;
  std::string resume;
  bool use_cache = true;
  bool use_quarantine = true;
  bool want_ticket = false;
  std::uint64_t ticket = 0;
  std::uint64_t hold_ms = 0;
  std::uint64_t throttle_us = 0;
  std::string fault;
  std::uint64_t crash_signal = 0;
  std::uint64_t rlimit_mb = 0;
};

/// Validates field values (unknown keys are ignored — forward compatible;
/// malformed values of known keys are rejected, never half-parsed).
std::optional<Request> parse_request(const WireMap& m, std::string* error);
WireMap to_wire(const Request& r);

/// One analysis response. `verdict`/`stop` use the common vocabulary;
/// stats are the engine-specific mapping documented in svc/registry.h.
struct Response {
  Status status = Status::kError;
  std::string error;  ///< reason when status != kOk
  bool cached = false;
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
  std::uint64_t stored = 0;
  std::uint64_t explored = 0;
  std::uint64_t transitions = 0;
  std::int64_t extra = 0;
  bool has_value = false;
  double value = 0.0;
  std::string resume;  ///< resume token when a checkpoint was saved
  std::uint64_t ticket = 0;  ///< journal ticket, only when asked for
};

/// Deterministic field order; cache hits re-serialize the stored Response
/// with only `cached` flipped, so byte-level diffs ignore exactly one field.
WireMap to_wire(const Response& r);
std::optional<Response> parse_response(const WireMap& m, std::string* error);

/// Approximate heap footprint of a cached response (ResultCache accounting).
std::size_t response_bytes(const Response& r);

}  // namespace quanta::svc
