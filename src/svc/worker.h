// The execution side of the supervision layer: a sandboxed worker process
// that runs one admitted job at a time on behalf of the daemon.
//
// Protocol (svc::wire frames over the supervisor's socketpair):
//
//   supervisor → worker   to_wire(Request) + "ckpt_path"/"ckpt_resume"
//                         (the server-resolved checkpoint policy)
//   worker → supervisor   to_wire(Response), exactly one per job frame
//
// The worker never writes a partial answer for a job it could not finish:
// either a complete response frame arrives, or the process dies and the
// supervisor observes EOF — there is no third state. Everything an engine
// can throw is absorbed by common::governed, so the only crashes are real
// ones (signals, rlimit exhaustion, injected kCrash drills).
#pragma once

#include <string>

#include "svc/request.h"
#include "svc/wire.h"

namespace quanta::svc {

/// Builds the job frame the supervisor dispatches: the request plus the
/// server-resolved checkpoint chain path and whether to resume it.
WireMap make_job_frame(const Request& req, const std::string& ckpt_path,
                       bool resume);

/// Post-fork, pre-loop initialization: closes every inherited descriptor
/// except stdio and `job_fd` (listener and session sockets, other workers'
/// pipes), restores default SIGINT/SIGTERM dispositions and keeps SIGPIPE
/// ignored so a dying supervisor surfaces as a write error, not a signal.
void worker_process_init(int job_fd);

/// The worker loop: read a job frame from `job_fd`, execute it under the
/// requested budget/checkpoint policy, reply, repeat until the supervisor
/// closes the pipe. Returns the process exit code (0 on a clean hang-up).
int worker_main(int job_fd);

/// False when rlimit-based OOM drills are unavailable: sanitizer shadow
/// mappings are incompatible with a small RLIMIT_AS, so sanitized builds
/// skip both the limit and the tests that exercise it.
bool worker_rlimit_supported();

}  // namespace quanta::svc
