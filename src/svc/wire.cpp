#include "svc/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace quanta::svc {

void WireMap::set(std::string key, std::string value) {
  fields_.emplace_back(std::move(key), std::move(value));
}

void WireMap::set_u64(std::string key, std::uint64_t v) {
  set(std::move(key), std::to_string(v));
}

void WireMap::set_i64(std::string key, std::int64_t v) {
  set(std::move(key), std::to_string(v));
}

void WireMap::set_f64(std::string key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  set(std::move(key), buf);
}

const std::string* WireMap::get(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::uint64_t> WireMap::get_u64(const std::string& key) const {
  const std::string* s = this->get(key);
  if (s == nullptr || s->empty()) return std::nullopt;
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s->c_str(), &endp, 10);
  if (errno != 0 || endp == s->c_str() || *endp != '\0' ||
      s->find('-') != std::string::npos) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::int64_t> WireMap::get_i64(const std::string& key) const {
  const std::string* s = this->get(key);
  if (s == nullptr || s->empty()) return std::nullopt;
  char* endp = nullptr;
  errno = 0;
  const long long v = std::strtoll(s->c_str(), &endp, 10);
  if (errno != 0 || endp == s->c_str() || *endp != '\0') return std::nullopt;
  return v;
}

std::optional<double> WireMap::get_f64(const std::string& key) const {
  const std::string* s = this->get(key);
  if (s == nullptr || s->empty()) return std::nullopt;
  char* endp = nullptr;
  errno = 0;
  const double v = std::strtod(s->c_str(), &endp);
  if (errno != 0 || endp == s->c_str() || *endp != '\0') return std::nullopt;
  return v;
}

namespace {

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* why) {
    error = why;
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') {
      return fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Flat ASCII protocol: only the control-plane range is expected;
          // anything above is passed through as UTF-8 for robustness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }
  /// Bare scalar (number / true / false / null), captured as raw text.
  bool parse_scalar(std::string* out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\n' ||
          c == '\r') {
        break;
      }
      if (c == '{' || c == '[' || c == '"') {
        return fail("nested values are not supported");
      }
      ++pos;
    }
    if (pos == start) return fail("expected value");
    out->assign(text, start, pos - start);
    return true;
  }
};

}  // namespace

std::string WireMap::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, k);
    out.push_back(':');
    append_json_string(&out, v);
  }
  out.push_back('}');
  return out;
}

std::optional<WireMap> WireMap::parse_json(const std::string& text,
                                           std::string* error) {
  Parser p{text, 0, {}};
  WireMap out;
  auto fail = [&](const std::string& why) -> std::optional<WireMap> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!p.consume('{')) return fail("expected '{'");
  p.skip_ws();
  if (!p.consume('}')) {
    for (;;) {
      std::string key, value;
      if (!p.parse_string(&key)) return fail(p.error);
      if (!p.consume(':')) return fail("expected ':'");
      p.skip_ws();
      if (p.pos < p.text.size() && p.text[p.pos] == '"') {
        if (!p.parse_string(&value)) return fail(p.error);
      } else {
        if (!p.parse_scalar(&value)) return fail(p.error);
      }
      out.set(std::move(key), std::move(value));
      if (p.consume(',')) continue;
      if (p.consume('}')) break;
      return fail("expected ',' or '}'");
    }
  }
  p.skip_ws();
  if (p.pos != p.text.size()) return fail("trailing content after object");
  return out;
}

namespace {

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as a
    // return value, not a SIGPIPE that kills the daemon.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// 1 = full read, 0 = clean EOF before the first byte, -1 = socket error,
/// -2 = EOF after at least one byte (peer died mid-read).
int read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -2;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char hdr[4] = {
      static_cast<unsigned char>(len & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 24) & 0xFF),
  };
  return write_all(fd, hdr, sizeof(hdr)) &&
         write_all(fd, payload.data(), payload.size());
}

FrameStatus read_frame(int fd, std::string* payload) {
  unsigned char hdr[4];
  const int h = read_all(fd, hdr, sizeof(hdr));
  if (h == 0) return FrameStatus::kEof;
  if (h == -2) return FrameStatus::kTruncated;
  if (h < 0) return FrameStatus::kError;
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxFrameBytes) return FrameStatus::kTooLarge;
  payload->resize(len);
  if (len > 0) {
    const int b = read_all(fd, payload->data(), len);
    if (b == 0 || b == -2) return FrameStatus::kTruncated;
    if (b != 1) return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

}  // namespace quanta::svc
