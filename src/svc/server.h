// The analysis-as-a-service server: a long-lived daemon core multiplexing
// governed analysis requests from many concurrent sessions over Unix / TCP
// stream sockets.
//
// Life of a request (DESIGN.md "Analysis service"):
//
//   frame → parse/validate → [svc builtins] → registry lookup
//         → ResultCache probe (hit: answer in O(1), engine never invoked)
//         → JobQueue admission (reject kOverload under pressure)
//         → runner executes under common::Budget + checkpoint policy
//         → budget trip: snapshot saved, response carries a resume token
//         → completed results inserted into the cache → framed response
//
// Resume tokens: the 16-hex-digit FNV fingerprint of the canonical job
// key. A budget-tripped job saves its checkpoint chain under
// <ckpt_dir>/job-<engine>-<token>.qckpt; a client re-submitting the same
// query with that token resumes it (`src/ckpt` guarantees the resumed
// result is bit-identical to an uninterrupted run). A token that does not
// match the re-submitted query is rejected — and even a forged match is
// harmless, because the engine re-validates its own fingerprint inside
// the snapshot.
//
// Shutdown discipline (stop(), also the destructor): listeners are shut
// down and acceptors joined; the JobQueue cancels every in-flight job and
// drains (all waiting sessions unblock with a result); session sockets are
// then read-shutdown so blocked reads see EOF, and session threads are
// joined. No step can deadlock on another.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "svc/job_queue.h"
#include "svc/journal.h"
#include "svc/registry.h"
#include "svc/request.h"
#include "svc/result_cache.h"
#include "svc/supervisor.h"

namespace quanta::svc {

struct ServerConfig {
  /// Unix-domain listener path; a stale socket file (SIGKILLed daemon) is
  /// unlinked before bind. Empty = no unix listener.
  std::string socket_path;
  /// 127.0.0.1 TCP listener; -1 = off, 0 = ephemeral (see Server::tcp_port).
  int tcp_port = -1;
  unsigned jobs = 0;             ///< job runners; 0 = QUANTAD_JOBS default
  std::size_t queue_depth = 0;   ///< queued jobs; 0 = QUANTAD_QUEUE_DEPTH
  std::size_t cache_bytes = 0;   ///< cache budget; 0 = QUANTAD_CACHE_MEM
  /// Admission ceiling on the summed memory charges of queued + running
  /// jobs; a job is charged its memory budget, or `default_job_charge`
  /// when the request carries none.
  std::size_t inflight_bytes = 4ull << 30;
  std::size_t default_job_charge = 256ull << 20;
  /// Directory for resume-token checkpoints (created if missing); empty
  /// disables checkpointing and resume tokens.
  std::string ckpt_dir;
  /// Honor the hold_ms / throttle_us debug pacing fields (tests, CI smoke
  /// and benches only — a production daemon rejects them).
  bool enable_debug = false;
  /// Execute jobs in a prefork pool of sandboxed worker processes (one per
  /// runner) instead of the daemon's own address space: a crashing engine
  /// fails one job, never the service. The library defaults to in-process;
  /// the quantad tool turns isolation on unless QUANTAD_ISOLATE=0.
  bool isolate = false;
  /// Crash re-dispatches per job before its fingerprint is quarantined;
  /// -1 = QUANTAD_RETRIES default. Only meaningful with isolate.
  int retries = -1;
  /// Unclaimed resume-checkpoint chains older than this many seconds are
  /// garbage collected (age = the chain's newest file); 0 = QUANTAD_CKPT_TTL
  /// default. Claimed chains are removed as soon as their job completes.
  std::uint64_t ckpt_ttl_s = 0;
  /// Durable-state directory (created if missing): the write-ahead job
  /// journal and the cache segment live here. Empty = no durability, the
  /// daemon is amnesiac across restarts. Any failure to set the directory
  /// or its files up degrades to in-memory-only operation, never a failed
  /// boot.
  std::string state_dir;
  /// Write-ahead job journaling (needs state_dir): restarts replay
  /// incomplete jobs and restore the quarantine set and --ticket answers.
  bool journal = true;
  /// Result-cache spill to disk (needs state_dir): restarts reload the
  /// cache, so post-restart traffic is warm and byte-identical.
  bool cache_persist = true;
};

/// One TTL sweep over `dir`: removes every "job-*.qckpt*" checkpoint chain
/// whose newest member is at least `ttl_s` seconds old (chains are aged as
/// a unit — fresh deltas keep their old base alive). Returns the number of
/// files removed. The server runs this at start() and amortized afterwards.
std::size_t gc_checkpoints(const std::string& dir, std::uint64_t ttl_s);

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners and starts acceptor/runner threads. False (with a
  /// reason in *error) on any setup failure; the server is then inert.
  bool start(std::string* error);
  /// Graceful shutdown as documented above. Idempotent.
  void stop();

  /// Resolved TCP port (useful with cfg.tcp_port == 0); -1 when TCP is off.
  int tcp_port() const { return tcp_port_; }

  struct Stats {
    std::uint64_t accepted = 0;       ///< connections accepted
    std::uint64_t accept_faults = 0;  ///< connections dropped by svc.accept
    std::uint64_t requests = 0;       ///< frames parsed into requests
    std::uint64_t bad_requests = 0;
    std::uint64_t overloads = 0;      ///< admission rejections served
    std::uint64_t jobs_executed = 0;  ///< engine invocations (cache hits skip)
    std::uint64_t quarantine_hits = 0;  ///< jobs answered from the poison list
    std::uint64_t ckpt_gc_removed = 0;  ///< checkpoint files expired by GC
    bool isolated = false;            ///< jobs run in worker processes
    bool journaling = false;          ///< job journal currently healthy
    std::uint64_t tickets_issued = 0;   ///< this process (replay seeds counter)
    std::uint64_t tickets_pending = 0;  ///< journaled jobs awaiting completion
    std::uint64_t ticket_answers = 0;   ///< answers retained for --ticket
    std::uint64_t journal_appends = 0;
    std::uint64_t journal_failures = 0;
    std::uint64_t journal_replayed = 0;  ///< incomplete jobs found at boot
    std::uint64_t journal_dropped = 0;   ///< corrupt records dropped at boot
    std::uint64_t jobs_recovered = 0;    ///< replayed jobs completed by now
    bool recovery_done = false;          ///< replay queue fully drained
    ResultCache::Stats cache;
    JobQueue::Stats queue;
    Supervisor::Stats supervisor;     ///< zeros when not isolated
  };
  Stats stats() const;

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  bool listen_unix(std::string* error);
  bool listen_tcp(std::string* error);
  void accept_loop(int listen_fd);
  void session_loop(Session* session);
  void reap_finished_sessions();

  /// Full request pipeline; always returns a well-formed response map.
  WireMap handle_payload(const std::string& payload);
  WireMap handle_builtin(const Request& req);
  WireMap handle_ticket_fetch(const Request& req);
  Response run_analysis(const Request& req);
  Response execute_job(const Request& req, const PreparedJob& prepared,
                       const common::Budget& budget,
                       const ckpt::Options& checkpoint);
  /// Amortized TTL sweep (at most once per minute, or per TTL if shorter).
  void maybe_gc_checkpoints();

  /// Boot-time durable-state setup: journal replay + compaction, ticket
  /// tables, quarantine restore, cache segment reload. Never fails the
  /// boot; any broken piece degrades to in-memory-only with a warning.
  void setup_durable_state();
  /// Records a finished ticket (answer table + journal complete record).
  void finish_ticket(std::uint64_t ticket, std::uint64_t fingerprint,
                     const Response& canonical);
  /// Background replay of journaled incomplete jobs (runs after start()).
  void run_recovery();

  ServerConfig cfg_;
  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<Supervisor> supervisor_;

  std::unique_ptr<Journal> journal_;
  mutable std::mutex journal_mu_;  ///< journal appends + ticket tables
  std::map<std::uint64_t, std::string> ticket_answers_;  ///< canonical JSON
  std::unordered_set<std::uint64_t> tickets_pending_;
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> tickets_issued_{0};
  std::atomic<std::uint64_t> journal_replayed_{0};
  std::atomic<std::uint64_t> journal_dropped_{0};
  std::atomic<std::uint64_t> jobs_recovered_{0};
  std::atomic<bool> recovery_done_{false};
  std::vector<PendingJob> recovery_jobs_;
  std::thread recovery_thread_;
  common::CancelToken recovery_cancel_;

  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex lifecycle_mu_;  ///< serializes start/stop

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::thread> acceptors_;

  std::mutex sessions_mu_;
  std::list<std::unique_ptr<Session>> sessions_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> accept_faults_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> overloads_{0};
  std::atomic<std::uint64_t> jobs_executed_{0};
  std::atomic<std::uint64_t> quarantine_hits_{0};
  std::atomic<std::uint64_t> ckpt_gc_removed_{0};

  std::mutex gc_mu_;
  std::chrono::steady_clock::time_point last_gc_{};
};

}  // namespace quanta::svc
