#include "svc/result_cache.h"

namespace quanta::svc {

namespace {

std::size_t entry_bytes(const std::string& key, const Response& r) {
  return key.size() + response_bytes(r) + ResultCache::kEntryOverhead;
}

}  // namespace

bool ResultCache::lookup(std::uint64_t fingerprint, const std::string& key,
                         Response* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = index_.equal_range(fingerprint);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->key != key) continue;  // fingerprint collision: skip
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->response;
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void ResultCache::insert(std::uint64_t fingerprint, const std::string& key,
                         const Response& response) {
  const std::size_t bytes = entry_bytes(key, response);
  if (bytes > budget_) return;  // would evict everything and still not fit
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = index_.equal_range(fingerprint);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->key != key) continue;
    // Refresh in place (e.g. a cache=0 run of an already-cached query).
    bytes_ -= it->second->bytes;
    it->second->response = response;
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_fit(0);
    return;
  }
  evict_to_fit(bytes);
  lru_.push_front(Entry{fingerprint, key, response, bytes});
  index_.emplace(fingerprint, lru_.begin());
  bytes_ += bytes;
  ++insertions_;
}

void ResultCache::evict_to_fit(std::size_t incoming) {
  while (bytes_ + incoming > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    auto [lo, hi] = index_.equal_range(victim.fingerprint);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == std::prev(lru_.end())) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= victim.bytes;
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget = budget_;
  return s;
}

}  // namespace quanta::svc
