#include "svc/result_cache.h"

#include <cstdio>

#include "ckpt/io.h"
#include "common/fault.h"

namespace quanta::svc {

namespace {

const ckpt::LogFormat kSegmentFormat{"QCSEG1\r\n", 1};

std::size_t entry_bytes(const std::string& key, const Response& r) {
  return key.size() + response_bytes(r) + ResultCache::kEntryOverhead;
}

/// One segment record: [fp u64][key len u32][key][json len u32][json],
/// where json is the canonical response wire encoding — the exact bytes a
/// cold run of this query would have produced.
std::vector<std::uint8_t> encode_entry(std::uint64_t fingerprint,
                                       const std::string& key,
                                       const Response& r) {
  ckpt::io::Writer w;
  w.u64(fingerprint);
  w.u32(static_cast<std::uint32_t>(key.size()));
  w.bytes(key.data(), key.size());
  const std::string json = to_wire(r).to_json();
  w.u32(static_cast<std::uint32_t>(json.size()));
  w.bytes(json.data(), json.size());
  return w.take();
}

bool decode_entry(const std::vector<std::uint8_t>& rec, std::uint64_t* fp,
                  std::string* key, Response* response) {
  ckpt::io::Reader r(rec);
  *fp = r.u64();
  const std::uint32_t klen = r.u32();
  if (!r.ok() || !r.fits(klen, 1)) return false;
  key->resize(klen);
  if (klen != 0 && !r.bytes(key->data(), klen)) return false;
  const std::uint32_t jlen = r.u32();
  if (!r.ok() || !r.fits(jlen, 1) || r.remaining() != jlen) return false;
  std::string json(jlen, '\0');
  if (jlen != 0 && !r.bytes(json.data(), jlen)) return false;
  const auto m = WireMap::parse_json(json, nullptr);
  if (!m) return false;
  const auto parsed = parse_response(*m, nullptr);
  if (!parsed) return false;
  *response = *parsed;
  return true;
}

}  // namespace

bool ResultCache::enable_persistence(const std::string& path,
                                     std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  persist_path_ = path;
  persist_healthy_ = false;

  std::vector<std::vector<std::uint8_t>> records;
  const ckpt::LogScanStats scan = ckpt::scan_log(path, kSegmentFormat, &records);
  persist_dropped_ += scan.dropped;
  if (scan.fresh && scan.note != "no log file") {
    std::fprintf(stderr,
                 "quantad: cache segment %s unusable (%s); starting cold\n",
                 path.c_str(), scan.note.c_str());
  }
  // Reload in file order: the segment is compacted cold→hot, so the last
  // (hottest) records land at the LRU front and budget eviction naturally
  // sheds the overflow.
  for (const auto& rec : records) {
    std::uint64_t fp = 0;
    std::string key;
    Response response;
    if (!decode_entry(rec, &fp, &key, &response)) {
      ++persist_dropped_;
      continue;
    }
    const std::size_t bytes = entry_bytes(key, response);
    if (bytes > budget_) {
      ++persist_dropped_;
      continue;
    }
    bool refreshed = false;
    auto [lo, hi] = index_.equal_range(fp);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->key != key) continue;
      bytes_ -= it->second->bytes;
      it->second->response = response;
      it->second->bytes = bytes;
      bytes_ += bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
      refreshed = true;
      break;
    }
    if (!refreshed) {
      evict_to_fit(bytes);
      lru_.push_front(Entry{fp, key, response, bytes});
      index_.emplace(fp, lru_.begin());
      bytes_ += bytes;
    }
    ++persist_loaded_;
  }
  if (!compact_locked(error)) return false;
  persist_healthy_ = true;
  return true;
}

bool ResultCache::compact_locked(std::string* error) {
  std::vector<std::vector<std::uint8_t>> records;
  records.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {  // cold → hot
    records.push_back(encode_entry(it->fingerprint, it->key, it->response));
  }
  try {
    common::FaultInjector::site("svc.cache.persist");
    if (!ckpt::rewrite_log(persist_path_, kSegmentFormat, records,
                           "svc.cache.persist")) {
      if (error != nullptr) {
        *error = "cache segment rewrite failed: " + persist_path_;
      }
      return false;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("cache segment rewrite failed: ") + e.what();
    }
    return false;
  }
  return log_.open(persist_path_, kSegmentFormat, error);
}

void ResultCache::persist_append_locked(const Entry& e) {
  if (!persist_healthy_) return;
  bool ok = false;
  try {
    common::FaultInjector::site("svc.cache.persist");
    ok = log_.append(encode_entry(e.fingerprint, e.key, e.response));
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    ++persist_failures_;
    disable_persist_locked("write failed");
    return;
  }
  ++persist_appends_;
  // Amortized compaction: disk records are append-only (evictions and
  // refreshes leave stale records behind), so rewrite once the file has
  // grown well past anything the budget can hold live.
  if (log_.appended_bytes() > 2 * budget_ + (1u << 20)) {
    std::string err;
    if (!compact_locked(&err)) {
      ++persist_failures_;
      disable_persist_locked(err.c_str());
    }
  }
}

void ResultCache::disable_persist_locked(const char* why) {
  persist_healthy_ = false;
  log_.close();
  std::fprintf(stderr,
               "quantad: cache persistence disabled (%s); continuing "
               "in-memory-only\n",
               why);
}

bool ResultCache::lookup(std::uint64_t fingerprint, const std::string& key,
                         Response* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = index_.equal_range(fingerprint);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->key != key) continue;  // fingerprint collision: skip
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->response;
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void ResultCache::insert(std::uint64_t fingerprint, const std::string& key,
                         const Response& response) {
  const std::size_t bytes = entry_bytes(key, response);
  if (bytes > budget_) return;  // would evict everything and still not fit
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = index_.equal_range(fingerprint);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->key != key) continue;
    // Refresh in place (e.g. a cache=0 run of an already-cached query).
    bytes_ -= it->second->bytes;
    it->second->response = response;
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_fit(0);
    persist_append_locked(*lru_.begin());
    return;
  }
  evict_to_fit(bytes);
  lru_.push_front(Entry{fingerprint, key, response, bytes});
  index_.emplace(fingerprint, lru_.begin());
  bytes_ += bytes;
  ++insertions_;
  persist_append_locked(*lru_.begin());
}

void ResultCache::evict_to_fit(std::size_t incoming) {
  while (bytes_ + incoming > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    auto [lo, hi] = index_.equal_range(victim.fingerprint);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == std::prev(lru_.end())) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= victim.bytes;
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget = budget_;
  s.persist_enabled = persist_healthy_;
  s.persist_loaded = persist_loaded_;
  s.persist_dropped = persist_dropped_;
  s.persist_appends = persist_appends_;
  s.persist_failures = persist_failures_;
  return s;
}

}  // namespace quanta::svc
