#include "svc/worker.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <new>
#include <thread>

#include "common/budget.h"
#include "common/fault.h"
#include "core/observer.h"
#include "svc/registry.h"

// Sanitizer shadow memory reserves terabytes of address space; a job-sized
// RLIMIT_AS would kill the worker at startup, not at the drill point.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QUANTA_WORKER_NO_RLIMIT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QUANTA_WORKER_NO_RLIMIT 1
#endif
#endif

namespace quanta::svc {

namespace {

/// Headroom above the job's soft memory budget before the hard RLIMIT_AS
/// cap: the soft budget trips via Budget::poll byte accounting long before;
/// the rlimit only catches allocations that accounting never saw (leaks,
/// wild growth) — plus the process's own baseline mappings.
constexpr std::uint64_t kRlimitSlackMb = 1024;

/// Scoped RLIMIT_AS for one job. `exact_mb` (the rlimit_mb drill knob) is
/// applied verbatim; otherwise a non-zero job budget gets budget + slack.
/// While a limit is armed, allocation failure aborts instead of throwing:
/// exhausting the hard cap means the soft accounting failed, and a loud
/// contained death is the designed response, not a degraded verdict.
///
/// The drill cap additionally preflights one 256 MiB allocation.
/// A worker forked from a warm daemon inherits glibc's per-thread arena
/// reservations — address-space blocks the allocator regrows via mprotect,
/// which the kernel never checks against RLIMIT_AS — so a job's ordinary
/// small allocations can dodge a drill-sized cap indefinitely in a
/// respawned worker while killing a fresh one. The preflight is too big for
/// any arena heap (> 64 MiB forces the mmap path the kernel does check):
/// under the cap the kernel refuses it, the armed handler fires, and the
/// worker dies by SIGABRT exactly like a production job whose growth
/// outran the soft accounting.
class RlimitGuard {
 public:
  RlimitGuard(std::uint64_t exact_mb, std::uint64_t budget_mb) {
#if !defined(QUANTA_WORKER_NO_RLIMIT)
    const std::uint64_t mb =
        exact_mb != 0 ? exact_mb : (budget_mb != 0 ? budget_mb + kRlimitSlackMb : 0);
    if (mb == 0) return;
    if (::getrlimit(RLIMIT_AS, &saved_) != 0) return;
    rlimit lim = saved_;
    const rlim_t bytes = static_cast<rlim_t>(mb) << 20;
    lim.rlim_cur = (saved_.rlim_max == RLIM_INFINITY || bytes < saved_.rlim_max)
                       ? bytes
                       : saved_.rlim_max;
    if (::setrlimit(RLIMIT_AS, &lim) != 0) return;
    applied_ = true;
    old_handler_ = std::set_new_handler([] { std::abort(); });
    if (exact_mb != 0) {
      // Direct operator-new calls are not elidable, so the probe cannot be
      // optimized away with its failure path. A generous drill cap grants
      // the probe and the job proceeds; a tight one dies here.
      void* probe = ::operator new(std::size_t{256} << 20);
      ::operator delete(probe);
    }
#else
    (void)exact_mb;
    (void)budget_mb;
#endif
  }
  ~RlimitGuard() {
    if (applied_) {
      std::set_new_handler(old_handler_);
      ::setrlimit(RLIMIT_AS, &saved_);
    }
  }
  RlimitGuard(const RlimitGuard&) = delete;
  RlimitGuard& operator=(const RlimitGuard&) = delete;

 private:
  bool applied_ = false;
  rlimit saved_{};
  std::new_handler old_handler_ = nullptr;
};

/// Worker-side twin of the server's debug throttle (see server.cpp).
class Throttle final : public core::ExplorationObserver {
 public:
  explicit Throttle(std::uint64_t us) : us_(us) {}
  void on_state_explored(std::int32_t) override {
    if (us_ > 0) std::this_thread::sleep_for(std::chrono::microseconds(us_));
  }

 private:
  std::uint64_t us_;
};

Response error_response(Status status, std::string why) {
  Response r;
  r.status = status;
  r.error = std::move(why);
  return r;
}

WireMap run_one_job(const std::string& payload) {
  std::string error;
  const auto map = WireMap::parse_json(payload, &error);
  if (!map) {
    return to_wire(
        error_response(Status::kError, "worker: malformed job frame: " + error));
  }
  const auto req = parse_request(*map, &error);
  if (!req) return to_wire(error_response(Status::kError, "worker: " + error));

  ckpt::Options checkpoint;
  if (const std::string* p = map->get("ckpt_path")) checkpoint.path = *p;
  checkpoint.interval = req->ckpt_interval;
  const std::string* resume = map->get("ckpt_resume");
  checkpoint.resume = resume != nullptr && *resume == "1";

  // Crash drills, gated by --debug + isolation on the server side. The
  // signal disposition is reset first so the death is by the real signal
  // even when a sanitizer installed its own handler.
  if (req->crash_signal != 0) {
    const int sig = static_cast<int>(req->crash_signal);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
  const bool fault_armed = !req->fault.empty();
  if (fault_armed) {
    common::FaultInjector::instance().arm_from_spec(req->fault);
  }

  const auto prepared = prepare_job(*req, &error);
  if (!prepared) return to_wire(error_response(Status::kBadRequest, error));

  common::Budget budget;
  if (req->deadline_ms != 0) {
    budget.with_deadline_after(std::chrono::milliseconds(req->deadline_ms));
  }
  if (req->memory_mb != 0) budget.with_memory_limit(req->memory_mb << 20);
  RlimitGuard rlimit(req->rlimit_mb, req->memory_mb);

  Throttle throttle(req->throttle_us);
  core::ExplorationObserver* observer =
      req->throttle_us != 0 ? &throttle : nullptr;
  const std::string token = fingerprint_token(prepared->fingerprint);
  const Response resp = common::governed(
      [&] {
        common::FaultInjector::site("svc.worker.job");
        return response_from_result(prepared->run(budget, checkpoint, observer),
                                    token);
      },
      [&](common::StopReason reason) {
        Response r;
        r.status = Status::kOk;
        r.verdict = common::Verdict::kUnknown;
        r.stop = reason;
        return r;
      });
  // A per-job fault spec must not leak its remaining countdown into the
  // next job this worker serves (a crash drill that fired never gets here —
  // the process is already gone).
  if (fault_armed) common::FaultInjector::instance().disarm();
  return to_wire(resp);
}

}  // namespace

WireMap make_job_frame(const Request& req, const std::string& ckpt_path,
                       bool resume) {
  WireMap m = to_wire(req);
  if (!ckpt_path.empty()) {
    m.set("ckpt_path", ckpt_path);
    m.set("ckpt_resume", resume ? "1" : "0");
  }
  return m;
}

void worker_process_init(int job_fd) {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGPIPE, SIG_IGN);
  // Drop every descriptor the daemon was holding — listeners, sessions,
  // other workers' pipes. A worker holding a sibling's pipe end would mask
  // that sibling's EOF-on-death from the supervisor.
  const long open_max = ::sysconf(_SC_OPEN_MAX);
  const int limit =
      open_max > 0 && open_max < 4096 ? static_cast<int>(open_max) : 4096;
  for (int fd = 3; fd < limit; ++fd) {
    if (fd != job_fd) ::close(fd);
  }
}

int worker_main(int job_fd) {
  std::string payload;
  for (;;) {
    if (read_frame(job_fd, &payload) != FrameStatus::kOk) {
      return 0;  // supervisor hung up (shutdown) or the pipe broke
    }
    if (!write_frame(job_fd, run_one_job(payload).to_json())) return 0;
  }
}

bool worker_rlimit_supported() {
#if defined(QUANTA_WORKER_NO_RLIMIT)
  return false;
#else
  return true;
#endif
}

}  // namespace quanta::svc
