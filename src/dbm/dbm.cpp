#include "dbm/dbm.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/hash.h"

#include "common/error.h"

namespace quanta::dbm {

std::string bound_to_string(raw_t raw) {
  if (raw >= kInf) return "<inf";
  std::ostringstream os;
  os << (bound_is_strict(raw) ? "<" : "<=") << bound_value(raw);
  return os.str();
}

Dbm::Dbm(int dim) : dim_(dim), m_(static_cast<std::size_t>(dim) * dim, kLeZero) {
  if (dim < 1) {
    throw std::invalid_argument(quanta::context(
        "dbm", "dimension must be >= 1 (clock 0 is the reference), got ",
        dim));
  }
}

Dbm Dbm::zero(int dim) {
  Dbm d(dim);  // all entries <=0: exactly the origin
  return d;
}

Dbm Dbm::universal(int dim) {
  Dbm d(dim);
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      if (i == j || i == 0) {
        d.set(i, j, kLeZero);  // diagonal and non-negativity row
      } else {
        d.set(i, j, kInf);
      }
    }
  }
  return d;
}

bool Dbm::close() {
  for (int k = 0; k < dim_; ++k) {
    for (int i = 0; i < dim_; ++i) {
      raw_t dik = at(i, k);
      if (dik >= kInf) continue;
      for (int j = 0; j < dim_; ++j) {
        raw_t via = bound_add(dik, at(k, j));
        if (via < at(i, j)) set(i, j, via);
      }
    }
    if (at(k, k) < kLeZero) {
      set(0, 0, bound_lt(-1));  // canonical "empty" marker
      return false;
    }
  }
  return true;
}

bool Dbm::is_empty() const { return at(0, 0) < kLeZero; }

bool Dbm::constrain(int i, int j, raw_t bound) {
  if (is_empty()) return false;
  if (bound_add(at(j, i), bound) < kLeZero) {
    set(0, 0, bound_lt(-1));
    return false;
  }
  if (bound < at(i, j)) {
    set(i, j, bound);
    // Incremental re-canonicalization through the touched entry.
    for (int a = 0; a < dim_; ++a) {
      raw_t dai = at(a, i);
      if (dai >= kInf) continue;
      raw_t via_i = bound_add(dai, bound);
      if (via_i >= kInf) continue;
      for (int b = 0; b < dim_; ++b) {
        raw_t via = bound_add(via_i, at(j, b));
        if (via < at(a, b)) set(a, b, via);
      }
    }
  }
  return true;
}

bool Dbm::satisfies(int i, int j, raw_t bound) const {
  if (is_empty()) return false;
  return bound_add(at(j, i), bound) >= kLeZero;
}

void Dbm::up() {
  if (is_empty()) return;
  for (int i = 1; i < dim_; ++i) set(i, 0, kInf);
}

void Dbm::down() {
  if (is_empty()) return;
  for (int j = 1; j < dim_; ++j) {
    raw_t lo = kLeZero;  // clocks are non-negative
    for (int i = 1; i < dim_; ++i) {
      // After letting time pass backwards, the lower bound of x_j is limited
      // by the diagonal constraints x_i - x_j.
      lo = std::min(lo, at(i, j));
    }
    set(0, j, lo);
  }
}

void Dbm::reset(int clock, std::int32_t value) {
  if (is_empty()) return;
  for (int j = 0; j < dim_; ++j) {
    set(clock, j, bound_add(bound_le(value), at(0, j)));
    set(j, clock, bound_add(at(j, 0), bound_le(-value)));
  }
  set(clock, clock, kLeZero);
}

void Dbm::free_clock(int clock) {
  if (is_empty()) return;
  for (int j = 0; j < dim_; ++j) {
    if (j == clock) continue;
    set(clock, j, kInf);
    set(j, clock, at(j, 0));
  }
  set(clock, 0, kInf);
  set(0, clock, kLeZero);
}

void Dbm::copy_clock(int dst, int src) {
  if (is_empty() || dst == src) return;
  for (int j = 0; j < dim_; ++j) {
    if (j == dst) continue;
    set(dst, j, at(src, j));
    set(j, dst, at(j, src));
  }
  set(dst, src, kLeZero);
  set(src, dst, kLeZero);
  set(dst, dst, kLeZero);
}

namespace {

/// The one relation algorithm, over raw matrices: Dbm-vs-Dbm, Dbm-vs-view
/// and view-vs-view all funnel here so pooled comparisons are bit-identical
/// to owning ones.
Relation relation_raw(int dim, const raw_t* a, const raw_t* b) {
  const std::size_t n = static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim);
  const bool a_empty = a[0] < kLeZero;
  const bool b_empty = b[0] < kLeZero;
  if (a_empty && b_empty) return Relation::kEqual;
  if (a_empty) return Relation::kSubset;
  if (b_empty) return Relation::kSuperset;
  bool le = true, ge = true;
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (a[idx] > b[idx]) le = false;
    if (a[idx] < b[idx]) ge = false;
    if (!le && !ge) return Relation::kDifferent;
  }
  if (le && ge) return Relation::kEqual;
  return le ? Relation::kSubset : Relation::kSuperset;
}

}  // namespace

Relation Dbm::relation(const Dbm& other) const {
  if (dim_ != other.dim_) {
    throw std::invalid_argument(quanta::context(
        "dbm", "Dbm::relation: dimension mismatch (", dim_, " vs ",
        other.dim_, ")"));
  }
  return relation_raw(dim_, m_.data(), other.m_.data());
}

Relation Dbm::relation(const DbmView& other) const {
  if (dim_ != other.dim()) {
    throw std::invalid_argument(quanta::context(
        "dbm", "Dbm::relation: dimension mismatch (", dim_, " vs ",
        other.dim(), ")"));
  }
  return relation_raw(dim_, m_.data(), other.data());
}

Relation DbmView::relation(const DbmView& other) const {
  if (dim_ != other.dim_) {
    throw std::invalid_argument(quanta::context(
        "dbm", "DbmView::relation: dimension mismatch (", dim_, " vs ",
        other.dim_, ")"));
  }
  return relation_raw(dim_, m_, other.m_);
}

bool DbmView::equal(const DbmView& other) const {
  if (dim_ != other.dim_) return false;
  const std::size_t n = static_cast<std::size_t>(dim_) * static_cast<std::size_t>(dim_);
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (m_[idx] != other.m_[idx]) return false;
  }
  return true;
}

Dbm Dbm::from_raw(int dim, const raw_t* data) {
  Dbm d(dim);
  const std::size_t n = static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim);
  for (std::size_t idx = 0; idx < n; ++idx) {
    d.m_[idx] = data[idx];
  }
  return d;
}

bool Dbm::subset_eq(const Dbm& other) const {
  Relation r = relation(other);
  return r == Relation::kEqual || r == Relation::kSubset;
}

bool Dbm::intersects(const Dbm& other) const {
  Dbm tmp = *this;
  return tmp.intersect(other);
}

bool Dbm::intersect(const Dbm& other) {
  if (dim_ != other.dim_) {
    throw std::invalid_argument(quanta::context(
        "dbm", "Dbm::intersect: dimension mismatch (", dim_, " vs ",
        other.dim_, ")"));
  }
  if (is_empty()) return false;
  if (other.is_empty()) {
    set(0, 0, bound_lt(-1));
    return false;
  }
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      if (other.at(i, j) < at(i, j)) {
        if (!constrain(i, j, other.at(i, j))) return false;
      }
    }
  }
  return true;
}

void Dbm::extrapolate_max_bounds(const std::vector<std::int32_t>& k) {
  if (is_empty()) return;
  if (static_cast<int>(k.size()) != dim_) {
    throw std::invalid_argument(quanta::context(
        "dbm", "extrapolate_max_bounds: expected ", dim_,
        " constants (one per clock incl. the reference), got ", k.size()));
  }
  bool changed = false;
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      if (i == j) continue;
      raw_t b = at(i, j);
      if (b >= kInf) continue;
      if (i != 0 && bound_value(b) > k[i]) {
        set(i, j, kInf);
        changed = true;
      } else if (-bound_value(b) > k[j]) {
        set(i, j, bound_lt(-k[j]));
        changed = true;
      }
    }
  }
  if (changed) close();
}

bool Dbm::contains_point(const std::vector<double>& v) const {
  if (is_empty()) return false;
  if (static_cast<int>(v.size()) != dim_) {
    throw std::invalid_argument(quanta::context(
        "dbm", "contains_point: point has ", v.size(),
        " coordinates but the DBM has ", dim_, " clocks"));
  }
  constexpr double kTol = 1e-9;
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      raw_t b = at(i, j);
      if (b >= kInf) continue;
      double diff = v[i] - v[j];
      double m = bound_value(b);
      if (bound_is_strict(b) ? diff >= m - kTol : diff > m + kTol) return false;
    }
  }
  return true;
}

std::size_t Dbm::hash() const { return common::hash_vector(m_); }

std::string Dbm::to_string() const {
  if (is_empty()) return "<empty>";
  std::ostringstream os;
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      if (i == j || (at(i, j) >= kInf)) continue;
      if (i == 0 && at(i, j) == kLeZero) continue;  // trivial non-negativity
      os << "x" << i << "-x" << j << bound_to_string(at(i, j)) << "; ";
    }
  }
  std::string s = os.str();
  return s.empty() ? "<universal>" : s;
}

}  // namespace quanta::dbm
