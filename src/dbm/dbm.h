// Difference Bound Matrices: the canonical symbolic representation of clock
// zones used by the timed-automata engines (UPPAAL-style verification, TRON
// online testing, ECDAR refinement).
//
// A DBM of dimension n represents a conjunction of constraints
//   x_i - x_j <= m   or   x_i - x_j < m      (0 <= i, j < n)
// where clock 0 is the constant reference clock (value 0), so row/column 0
// encodes upper/lower bounds of individual clocks.
//
// Bounds are stored in the classic "raw" encoding: raw = 2*m + (strict ? 0 : 1)
// so that raw comparison orders constraint strength and min/max work directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace quanta::dbm {

using raw_t = std::int32_t;

/// Largest representable finite bound value (anything larger is "no bound").
inline constexpr std::int32_t kInfValue = 1 << 28;
/// Raw encoding of "no constraint".
inline constexpr raw_t kInf = (kInfValue << 1) | 1;
/// Raw encoding of `<= 0`.
inline constexpr raw_t kLeZero = 1;
/// Raw encoding of `< 0` (only arises in intermediate computations).
inline constexpr raw_t kLtZero = 0;

/// Builds a raw bound from value and strictness.
constexpr raw_t make_bound(std::int32_t value, bool strict) {
  return static_cast<raw_t>((value << 1) | (strict ? 0 : 1));
}
constexpr raw_t bound_le(std::int32_t value) { return make_bound(value, false); }
constexpr raw_t bound_lt(std::int32_t value) { return make_bound(value, true); }

constexpr std::int32_t bound_value(raw_t raw) { return raw >> 1; }
constexpr bool bound_is_strict(raw_t raw) { return (raw & 1) == 0; }

/// Addition of bounds with infinity absorption; strict if either is strict.
constexpr raw_t bound_add(raw_t a, raw_t b) {
  if (a >= kInf || b >= kInf) return kInf;
  return static_cast<raw_t>(((bound_value(a) + bound_value(b)) << 1) |
                            ((a & b) & 1));
}

/// Negation of a bound: not(x <= m) == (x > m) == (-x < -m).
/// (m, <=) -> (-m, <), (m, <) -> (-m, <=).
constexpr raw_t bound_negate(raw_t raw) {
  return make_bound(-bound_value(raw), !bound_is_strict(raw));
}

std::string bound_to_string(raw_t raw);

/// How two zones relate under set inclusion.
enum class Relation { kEqual, kSubset, kSuperset, kDifferent };

class Dbm;

/// Non-owning view of a canonical DBM whose raw bounds live elsewhere —
/// in practice inside a store::ZonePool arena or spill mapping. Carries
/// (dim, pointer) only, so zone comparison against pooled storage never
/// materializes an owning Dbm. The pointed-at row-major matrix must use the
/// exact layout of Dbm::raw_data() and outlive the view.
class DbmView {
 public:
  DbmView(int dim, const raw_t* data) : dim_(dim), m_(data) {}

  int dim() const { return dim_; }
  const raw_t* data() const { return m_; }
  raw_t at(int i, int j) const {
    return m_[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_) + j];
  }
  bool is_empty() const { return at(0, 0) < kLeZero; }

  /// Set-inclusion relation with another canonical DBM of the same
  /// dimension; identical semantics to Dbm::relation.
  Relation relation(const DbmView& other) const;
  bool equal(const DbmView& other) const;

 private:
  int dim_;
  const raw_t* m_;
};

class Dbm {
 public:
  /// Constructs the *empty* relation holder of the given dimension; use the
  /// named factories below for meaningful zones. dim >= 1 (reference clock).
  explicit Dbm(int dim);

  /// The zone where every clock equals 0.
  static Dbm zero(int dim);
  /// The zone of all valuations with non-negative clocks.
  static Dbm universal(int dim);

  int dim() const { return dim_; }

  raw_t at(int i, int j) const { return m_[static_cast<std::size_t>(i) * dim_ + j]; }
  void set(int i, int j, raw_t v) { m_[static_cast<std::size_t>(i) * dim_ + j] = v; }

  /// Floyd-Warshall canonicalization. Returns false (and marks the zone
  /// empty) if the constraint system is inconsistent.
  bool close();

  bool is_empty() const;

  /// Conjoins constraint x_i - x_j (raw) and restores canonical form
  /// incrementally. Returns false if the zone becomes empty.
  bool constrain(int i, int j, raw_t bound);
  bool constrain_le(int i, int j, std::int32_t value) {
    return constrain(i, j, bound_le(value));
  }

  /// True iff the zone intersected with x_i - x_j (raw) is non-empty.
  /// Does not modify the zone.
  bool satisfies(int i, int j, raw_t bound) const;

  /// Delay: removes upper bounds on all clocks (future closure).
  void up();
  /// Past: removes lower bounds on all clocks (down closure).
  void down();
  /// Resets clock i to the (non-negative) constant value.
  void reset(int clock, std::int32_t value);
  /// Removes all constraints on clock i.
  void free_clock(int clock);
  /// Assigns clock i := clock j.
  void copy_clock(int dst, int src);

  /// Set-inclusion relation with another canonical DBM of the same dimension.
  Relation relation(const Dbm& other) const;
  /// Same, against a non-owning view of pooled zone storage.
  Relation relation(const DbmView& other) const;
  bool subset_eq(const Dbm& other) const;

  /// The row-major raw-bound matrix (dim*dim entries) — the fixed-width
  /// payload interned into store::ZonePool and written by the QCKPD1 codec.
  const raw_t* raw_data() const { return m_.data(); }
  DbmView view() const { return DbmView(dim_, m_.data()); }
  /// Rebuilds an owning Dbm from a raw matrix in raw_data() layout. The
  /// input must already be canonical (it came from a canonical Dbm).
  static Dbm from_raw(int dim, const raw_t* data);

  /// True iff the intersection with `other` is non-empty.
  bool intersects(const Dbm& other) const;
  /// Intersects in place; returns false if empty.
  bool intersect(const Dbm& other);

  /// Classic maximal-bounds extrapolation: bounds above k[i] are abstracted
  /// away so that the zone graph becomes finite. k[0] must be 0. Re-closes.
  void extrapolate_max_bounds(const std::vector<std::int32_t>& k);

  /// Membership test for a concrete clock valuation (v[0] must be 0).
  bool contains_point(const std::vector<double>& v) const;

  /// Tightest raw upper bound on clock i (row i, column 0).
  raw_t upper_bound(int clock) const { return at(clock, 0); }
  /// Tightest raw lower bound of clock i, as the raw of x_0 - x_i.
  raw_t lower_bound(int clock) const { return at(0, clock); }

  bool operator==(const Dbm& other) const = default;

  std::size_t hash() const;
  std::string to_string() const;

 private:
  int dim_;
  std::vector<raw_t> m_;
};

}  // namespace quanta::dbm
