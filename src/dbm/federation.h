// Federations: finite unions of zones (DBMs) of a common dimension.
// Needed wherever a set difference of zones arises — exact deadlock checking
// in the model checker and state-set estimation in online testing.
#pragma once

#include <string>
#include <vector>

#include "dbm/dbm.h"

namespace quanta::dbm {

class Federation {
 public:
  explicit Federation(int dim) : dim_(dim) {}
  /// Federation containing a single zone (skipped if empty).
  explicit Federation(const Dbm& zone);

  int dim() const { return dim_; }
  bool is_empty() const { return zones_.empty(); }
  std::size_t size() const { return zones_.size(); }
  const std::vector<Dbm>& zones() const { return zones_; }

  /// Adds a zone; drops it if empty or already included in a member, and
  /// drops members included in the new zone.
  void add(const Dbm& zone);

  /// Removes `zone` from this federation (exact set difference).
  void subtract(const Dbm& zone);

  /// Intersects every member with `zone`, dropping empties.
  void intersect(const Dbm& zone);

  /// True iff `zone` is completely covered by this federation.
  bool contains(const Dbm& zone) const;

  /// True iff some member intersects `zone`.
  bool intersects(const Dbm& zone) const;

  std::string to_string() const;

 private:
  int dim_;
  std::vector<Dbm> zones_;
};

/// Exact set difference minuend \ subtrahend as a list of disjoint zones.
std::vector<Dbm> subtract(const Dbm& minuend, const Dbm& subtrahend);

}  // namespace quanta::dbm
