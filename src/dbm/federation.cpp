#include "dbm/federation.h"

#include <sstream>
#include <stdexcept>

namespace quanta::dbm {

std::vector<Dbm> subtract(const Dbm& minuend, const Dbm& subtrahend) {
  std::vector<Dbm> result;
  if (minuend.is_empty()) return result;
  if (subtrahend.is_empty()) {
    result.push_back(minuend);
    return result;
  }
  if (minuend.dim() != subtrahend.dim()) {
    throw std::invalid_argument("dbm::subtract: dimension mismatch");
  }
  // Peel the minuend constraint by constraint: for every facet of the
  // subtrahend, the part of the (remaining) minuend strictly outside that
  // facet belongs to the difference; the rest is carried forward. The pieces
  // produced this way are pairwise disjoint.
  Dbm rest = minuend;
  const int n = minuend.dim();
  for (int i = 0; i < n && !rest.is_empty(); ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      raw_t b = subtrahend.at(i, j);
      if (b >= kInf) continue;
      Dbm piece = rest;
      if (piece.constrain(j, i, bound_negate(b))) {
        result.push_back(piece);
      }
      if (!rest.constrain(i, j, b)) break;
    }
  }
  return result;
}

Federation::Federation(const Dbm& zone) : dim_(zone.dim()) {
  if (!zone.is_empty()) zones_.push_back(zone);
}

void Federation::add(const Dbm& zone) {
  if (zone.is_empty()) return;
  if (zone.dim() != dim_) throw std::invalid_argument("Federation::add: dim");
  for (auto it = zones_.begin(); it != zones_.end();) {
    Relation r = zone.relation(*it);
    if (r == Relation::kEqual || r == Relation::kSubset) return;  // covered
    if (r == Relation::kSuperset) {
      it = zones_.erase(it);
    } else {
      ++it;
    }
  }
  zones_.push_back(zone);
}

void Federation::subtract(const Dbm& zone) {
  if (zone.is_empty() || zones_.empty()) return;
  std::vector<Dbm> next;
  for (const Dbm& z : zones_) {
    if (!z.intersects(zone)) {
      next.push_back(z);
      continue;
    }
    for (Dbm& piece : quanta::dbm::subtract(z, zone)) {
      next.push_back(std::move(piece));
    }
  }
  zones_ = std::move(next);
}

void Federation::intersect(const Dbm& zone) {
  std::vector<Dbm> next;
  for (Dbm z : zones_) {
    if (z.intersect(zone)) next.push_back(std::move(z));
  }
  zones_ = std::move(next);
}

bool Federation::contains(const Dbm& zone) const {
  if (zone.is_empty()) return true;
  Federation remainder(zone);
  for (const Dbm& z : zones_) {
    remainder.subtract(z);
    if (remainder.is_empty()) return true;
  }
  return remainder.is_empty();
}

bool Federation::intersects(const Dbm& zone) const {
  for (const Dbm& z : zones_) {
    if (z.intersects(zone)) return true;
  }
  return false;
}

std::string Federation::to_string() const {
  if (zones_.empty()) return "<empty federation>";
  std::ostringstream os;
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (i > 0) os << " | ";
    os << "{" << zones_[i].to_string() << "}";
  }
  return os.str();
}

}  // namespace quanta::dbm
