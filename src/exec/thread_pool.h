// Fixed pool of worker threads distributing half-open index ranges through a
// shared atomic cursor — the scheduling substrate of the parallel statistical
// runtime (src/exec). Workers pull dynamically-sized chunks (guided
// self-scheduling: each claim takes remaining/(4*workers), never less than
// min_chunk), so late stragglers get small chunks and the pool load-balances
// without a work-stealing deque. The caller participates as worker 0, which
// makes a 1-worker pool run entirely inline on the calling thread: the
// sequential path of every engine is just a 1-worker executor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"

namespace quanta::exec {

/// Cooperative cancellation flag shared between the scheduler and its
/// consumers. Workers poll it between chunks (and the Executor between
/// individual runs); outstanding chunks that were never claimed are simply
/// abandoned. Cancellation is advisory: work already inside the body runs to
/// the next poll point.
///
/// This is the one cancellation type of the whole toolkit: the same token
/// lives inside common::Budget, so a watchdog (exec/watchdog.h) or a user
/// cancels a symbolic search and a statistical executor job alike.
using CancellationToken = common::CancelToken;

/// Worker count picked by the QUANTA_JOBS environment variable when it holds
/// a whole positive decimal number (clamped to 1024); anything else — unset,
/// empty, non-numeric, zero/negative, trailing garbage like "4x", or
/// out-of-range — falls back to std::thread::hardware_concurrency() (>= 1).
unsigned default_worker_count();

class ThreadPool {
 public:
  /// body(chunk_begin, chunk_end, worker_id): processes one claimed chunk.
  using ChunkFn = std::function<void(std::uint64_t, std::uint64_t, unsigned)>;

  /// 0 workers means default_worker_count(). A pool of n workers owns n-1
  /// background threads; the caller of parallel_chunks is worker 0.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return workers_; }

  /// Runs `body` over [begin, end) split into dynamically-sized chunks.
  /// Blocks until every claimed chunk finished. If a body throws, the first
  /// exception is rethrown here and the remaining chunks are abandoned; if
  /// `cancel` fires, workers stop claiming new chunks. Concurrent callers are
  /// serialized (the pool runs one job at a time).
  void parallel_chunks(std::uint64_t begin, std::uint64_t end,
                       const ChunkFn& body,
                       CancellationToken* cancel = nullptr,
                       std::uint64_t min_chunk = 1);

 private:
  void worker_loop(unsigned id);
  /// One worker draining the current job's cursor.
  void drain(unsigned id);
  bool claim(std::uint64_t* b, std::uint64_t* e);

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wait on it
  unsigned active_ = 0;           ///< background workers still in the job
  bool shutdown_ = false;
  std::exception_ptr error_;      ///< first exception of the current job

  // Current job; written under mu_ before the generation bump.
  const ChunkFn* body_ = nullptr;
  std::uint64_t end_ = 0;
  std::uint64_t min_chunk_ = 1;
  CancellationToken* cancel_ = nullptr;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<bool> abort_{false};  ///< set on exception; stops all workers

  std::mutex job_mu_;  ///< serializes parallel_chunks callers
};

}  // namespace quanta::exec
