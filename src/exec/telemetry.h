// Run-level telemetry of the parallel statistical runtime — the simulation
// counterpart of core::StatsObserver. Every Executor job fills one
// WorkerTelemetry slot per worker (no sharing, no atomics on the hot path);
// the slots are merged into a RunTelemetry that engines accumulate across
// phases (e.g. all batches of one SPRT test) and benches print.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace quanta::exec {

/// Counters of one worker within one (or several accumulated) jobs.
struct WorkerTelemetry {
  std::uint64_t runs_started = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t hits = 0;       ///< engine-defined successes (goal reached)
  std::uint64_t sim_steps = 0;  ///< discrete simulation steps executed
  double busy_seconds = 0.0;    ///< wall time spent inside chunk bodies
  double cpu_seconds = 0.0;     ///< thread CPU time spent inside chunk bodies

  void add(const WorkerTelemetry& o);
};

struct RunTelemetry {
  std::vector<WorkerTelemetry> workers;  ///< indexed by worker id
  double wall_seconds = 0.0;             ///< end-to-end time across all jobs

  std::uint64_t runs_started() const;
  std::uint64_t runs_completed() const;
  std::uint64_t hits() const;
  std::uint64_t sim_steps() const;
  double busy_seconds() const;
  double cpu_seconds() const;
  /// Completed runs per wall second (0 until some time was recorded).
  double runs_per_second() const;
  /// cpu/wall utilisation — ~worker count when the pool scales, ~1 when the
  /// hardware or the workload serializes it.
  double parallelism() const;

  /// Accumulates one job's per-worker slots and its wall time.
  void accumulate(const std::vector<WorkerTelemetry>& slots,
                  double job_wall_seconds);

  /// One-line human-readable summary for logs and benches.
  std::string summary() const;
};

/// CPU time of the calling thread (0 where unsupported).
double thread_cpu_seconds();

}  // namespace quanta::exec
