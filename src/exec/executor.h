// Executor: the engine-facing layer of the parallel statistical runtime. It
// owns a ThreadPool, hands each run index of [begin, end) to a body exactly
// once, fills per-worker telemetry slots, and polls cancellation between
// runs. Engines pair it with common::RngStream so run i draws the same
// random stream regardless of chunking, worker count or execution order —
// parallel and sequential results are bit-identical by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/telemetry.h"
#include "exec/thread_pool.h"

namespace quanta::exec {

class Executor {
 public:
  /// What a run body sees besides its index: the worker it landed on, that
  /// worker's private telemetry slot, and the job's cancellation token (null
  /// when the caller passed none).
  struct WorkerContext {
    unsigned worker_id = 0;
    WorkerTelemetry* telemetry = nullptr;
    CancellationToken* cancel = nullptr;
  };

  using RunFn = std::function<void(std::uint64_t, WorkerContext&)>;

  /// 0 workers means default_worker_count() (QUANTA_JOBS env override). A
  /// 1-worker executor runs everything inline on the calling thread.
  explicit Executor(unsigned workers = 0) : pool_(workers) {}

  unsigned workers() const { return pool_.worker_count(); }

  /// Runs body(i, ctx) for each i in [begin, end). Telemetry (when non-null)
  /// is *accumulated*, so one RunTelemetry can span several jobs (e.g. all
  /// batches of an SPRT test). Exceptions from the body propagate to the
  /// caller; cancellation stops workers at the next run boundary.
  void for_each(std::uint64_t begin, std::uint64_t end, const RunFn& body,
                CancellationToken* cancel = nullptr,
                RunTelemetry* telemetry = nullptr);

 private:
  ThreadPool pool_;
};

/// Process-wide executor shared by engine entry points that were not handed
/// an explicit one; sized by QUANTA_JOBS / hardware_concurrency.
Executor& global_executor();

/// Map-reduce over run indices: each worker folds its runs into a private
/// accumulator (seeded with a copy of `init`), and the per-worker
/// accumulators are merged in worker-id order after the job. The merged
/// result is bit-stable for a fixed worker count; it is independent of the
/// worker count only when `merge` is commutative and associative (integer
/// tallies are — prefer index-keyed output when it is not).
template <typename Acc, typename Body, typename Merge>
Acc parallel_reduce(Executor& ex, std::uint64_t begin, std::uint64_t end,
                    Acc init, Body&& body, Merge&& merge,
                    CancellationToken* cancel = nullptr,
                    RunTelemetry* telemetry = nullptr) {
  struct Slot {
    alignas(64) Acc acc;
  };
  std::vector<Slot> slots(ex.workers(), Slot{init});
  ex.for_each(
      begin, end,
      [&](std::uint64_t i, Executor::WorkerContext& ctx) {
        body(slots[ctx.worker_id].acc, i, ctx);
      },
      cancel, telemetry);
  Acc out = std::move(init);
  for (Slot& s : slots) merge(out, std::move(s.acc));
  return out;
}

}  // namespace quanta::exec
