#include "exec/executor.h"

#include <chrono>

namespace quanta::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void Executor::for_each(std::uint64_t begin, std::uint64_t end,
                        const RunFn& body, CancellationToken* cancel,
                        RunTelemetry* telemetry) {
  if (begin >= end) return;
  // One cache-line-padded slot per worker: the hot path increments plain
  // integers, and the slots are only read after the pool quiesced.
  struct Slot {
    alignas(64) WorkerTelemetry t;
  };
  std::vector<Slot> slots(pool_.worker_count());
  const Clock::time_point wall0 = Clock::now();

  ThreadPool::ChunkFn chunk = [&](std::uint64_t b, std::uint64_t e,
                                  unsigned worker) {
    WorkerTelemetry& t = slots[worker].t;
    const Clock::time_point t0 = Clock::now();
    const double cpu0 = thread_cpu_seconds();
    WorkerContext ctx{worker, &t, cancel};
    for (std::uint64_t i = b; i < e; ++i) {
      if (cancel && cancel->cancelled()) break;
      ++t.runs_started;
      body(i, ctx);
      ++t.runs_completed;
    }
    t.cpu_seconds += thread_cpu_seconds() - cpu0;
    t.busy_seconds += seconds_since(t0);
  };
  pool_.parallel_chunks(begin, end, chunk, cancel);

  if (telemetry) {
    std::vector<WorkerTelemetry> out;
    out.reserve(slots.size());
    for (Slot& s : slots) out.push_back(s.t);
    telemetry->accumulate(out, seconds_since(wall0));
  }
}

Executor& global_executor() {
  static Executor ex;
  return ex;
}

}  // namespace quanta::exec
