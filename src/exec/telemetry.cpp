#include "exec/telemetry.h"

#include <ctime>
#include <sstream>

namespace quanta::exec {

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

void WorkerTelemetry::add(const WorkerTelemetry& o) {
  runs_started += o.runs_started;
  runs_completed += o.runs_completed;
  hits += o.hits;
  sim_steps += o.sim_steps;
  busy_seconds += o.busy_seconds;
  cpu_seconds += o.cpu_seconds;
}

namespace {

template <typename F>
auto sum_over(const std::vector<WorkerTelemetry>& ws, F field)
    -> decltype(field(ws[0])) {
  decltype(field(ws[0])) total{};
  for (const WorkerTelemetry& w : ws) total += field(w);
  return total;
}

}  // namespace

std::uint64_t RunTelemetry::runs_started() const {
  return workers.empty() ? 0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.runs_started;
  });
}

std::uint64_t RunTelemetry::runs_completed() const {
  return workers.empty() ? 0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.runs_completed;
  });
}

std::uint64_t RunTelemetry::hits() const {
  return workers.empty() ? 0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.hits;
  });
}

std::uint64_t RunTelemetry::sim_steps() const {
  return workers.empty() ? 0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.sim_steps;
  });
}

double RunTelemetry::busy_seconds() const {
  return workers.empty() ? 0.0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.busy_seconds;
  });
}

double RunTelemetry::cpu_seconds() const {
  return workers.empty() ? 0.0 : sum_over(workers, [](const WorkerTelemetry& w) {
    return w.cpu_seconds;
  });
}

double RunTelemetry::runs_per_second() const {
  return wall_seconds > 0.0
             ? static_cast<double>(runs_completed()) / wall_seconds
             : 0.0;
}

double RunTelemetry::parallelism() const {
  return wall_seconds > 0.0 ? cpu_seconds() / wall_seconds : 0.0;
}

void RunTelemetry::accumulate(const std::vector<WorkerTelemetry>& slots,
                              double job_wall_seconds) {
  if (workers.size() < slots.size()) workers.resize(slots.size());
  for (std::size_t w = 0; w < slots.size(); ++w) workers[w].add(slots[w]);
  wall_seconds += job_wall_seconds;
}

std::string RunTelemetry::summary() const {
  std::ostringstream os;
  os << runs_completed() << " runs (" << hits() << " hits, " << sim_steps()
     << " steps) on " << workers.size() << " workers in " << wall_seconds
     << "s = " << static_cast<std::uint64_t>(runs_per_second())
     << " runs/s, parallelism " << parallelism();
  return os.str();
}

}  // namespace quanta::exec
