// Watchdog: a background thread that turns a passive common::Budget into an
// active cancellation source. The statistical engines (src/smc) spend their
// time inside simulation bodies on pool workers, where the amortized
// poll-every-N-expansions scheme of the symbolic engines has no natural hook;
// instead the watchdog polls the budget's deadline / external cancel flag at
// a fixed cadence and fires an *internal* CancellationToken that the
// Executor's chunk loop already observes between runs. The reason the
// watchdog fired with is recorded so the caller can map cancellation back to
// a common::StopReason (kTimeLimit vs kCancelled vs kFault).
//
// Token ownership: the watchdog only ever *sets* `target`; it never resets
// it, not even in its destructor. A fired target is sticky, so engines must
// hand the watchdog a token scoped to a single run (src/smc creates a fresh
// internal token per estimate/SPRT call). Handing it a long-lived token and
// reusing that token for the next run — e.g. when resuming from a checkpoint
// after a budget stop — would silently abort the resumed run at its first
// poll; see ExecTest.WatchdogDoesNotResetTargetAcrossRuns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/budget.h"

namespace quanta::exec {

class Watchdog {
 public:
  /// Starts watching `budget` (deadline + external cancel + forced-deadline
  /// fault injection). When the budget trips, fires `target` and records the
  /// reason. An inactive budget starts no thread at all, so the wrapper
  /// costs nothing on the ungoverned path.
  Watchdog(const common::Budget& budget, common::CancelToken& target);

  /// Stops the polling thread and joins it. Does NOT reset `target`.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Why the watchdog fired `target`; kCompleted if it never fired.
  common::StopReason fired_reason() const {
    return reason_.load(std::memory_order_acquire);
  }

 private:
  void run();

  const common::Budget& budget_;
  common::CancelToken& target_;
  std::atomic<common::StopReason> reason_{common::StopReason::kCompleted};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< last member: started after everything above
};

}  // namespace quanta::exec
