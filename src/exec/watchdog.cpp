#include "exec/watchdog.h"

#include <chrono>

namespace quanta::exec {

namespace {
// Poll cadence. Short enough that a deadline overshoots by at most ~5ms,
// long enough that the watchdog thread is asleep essentially always.
constexpr std::chrono::milliseconds kPollSlice{5};
}  // namespace

Watchdog::Watchdog(const common::Budget& budget, common::CancelToken& target)
    : budget_(budget), target_(target) {
  if (!budget_.active()) return;  // nothing to watch; stay threadless
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Poll before the first sleep: a budget that is already tripped when the
    // watchdog starts (expired deadline, pre-cancelled token) fires within
    // microseconds instead of one full slice later.
    // The watchdog has no view of engine memory, so it polls deadline /
    // cancel / forced-deadline only (memory_bytes_in_use = 0).
    const common::StopReason r = budget_.poll(0);
    if (r != common::StopReason::kCompleted) {
      reason_.store(r, std::memory_order_release);
      target_.cancel();
      return;
    }
    if (cv_.wait_for(lk, kPollSlice, [&] { return stop_; })) return;
  }
}

}  // namespace quanta::exec
