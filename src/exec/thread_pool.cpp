#include "exec/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace quanta::exec {

unsigned default_worker_count() {
  // The whole value must be a positive decimal number (common::env_u64):
  // trailing garbage ("4x"), empty strings, zero/negative counts and
  // out-of-range values all fall back to hardware_concurrency rather than
  // half-parsing.
  if (const auto v = common::env_u64("QUANTA_JOBS", 1024)) {
    return static_cast<unsigned>(*v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers > 0 ? workers : default_worker_count()) {
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain(id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

bool ThreadPool::claim(std::uint64_t* b, std::uint64_t* e) {
  std::uint64_t cur = cursor_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= end_) return false;
    const std::uint64_t remaining = end_ - cur;
    std::uint64_t n = std::max<std::uint64_t>(
        min_chunk_, remaining / (std::uint64_t{4} * workers_));
    n = std::min(n, remaining);
    if (cursor_.compare_exchange_weak(cur, cur + n,
                                      std::memory_order_relaxed)) {
      *b = cur;
      *e = cur + n;
      return true;
    }
  }
}

void ThreadPool::drain(unsigned id) {
  const ChunkFn& body = *body_;
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) return;
    if (cancel_ && cancel_->cancelled()) return;
    std::uint64_t b, e;
    if (!claim(&b, &e)) return;
    try {
      common::FaultInjector::site("exec.thread_pool.chunk");
      body(b, e, id);
    } catch (...) {
      abort_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
      return;
    }
  }
}

void ThreadPool::parallel_chunks(std::uint64_t begin, std::uint64_t end,
                                 const ChunkFn& body,
                                 CancellationToken* cancel,
                                 std::uint64_t min_chunk) {
  if (begin >= end) return;
  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    end_ = end;
    min_chunk_ = std::max<std::uint64_t>(1, min_chunk);
    cancel_ = cancel;
    cursor_.store(begin, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  drain(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace quanta::exec
