#include "common/stats.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/error.h"

namespace quanta::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes `betacf`).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-12;
  const double tiny = std::numeric_limits<double>::min() * 1e10;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                 a * std::log(x) + b * std::log1p(-x);
  double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

namespace {

// Smallest x with incomplete_beta(a, b, x) >= p, by bisection.
double beta_quantile(double a, double b, double p) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

std::pair<double, double> clopper_pearson(std::size_t successes,
                                          std::size_t trials, double alpha) {
  if (trials == 0) {
    throw std::invalid_argument(quanta::context(
        "common.stats", "clopper_pearson: trials must be positive"));
  }
  if (successes > trials) {
    throw std::invalid_argument(quanta::context(
        "common.stats", "clopper_pearson: successes (", successes,
        ") exceed trials (", trials, ")"));
  }
  double k = static_cast<double>(successes);
  double n = static_cast<double>(trials);
  double lo = 0.0, hi = 1.0;
  if (successes > 0) {
    lo = beta_quantile(k, n - k + 1.0, alpha / 2.0);
  }
  if (successes < trials) {
    hi = beta_quantile(k + 1.0, n - k, 1.0 - alpha / 2.0);
  }
  return {lo, hi};
}

std::size_t chernoff_sample_count(double epsilon, double delta) {
  if (epsilon <= 0.0 || epsilon >= 1.0 || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument(quanta::context(
        "common.stats", "chernoff_sample_count: epsilon and delta must lie ",
        "in (0, 1), got epsilon=", epsilon, ", delta=", delta));
  }
  double n = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<std::size_t>(std::ceil(n));
}

}  // namespace quanta::common
