// common::Budget — the shared resource envelope of every analysis entry
// point: a wall-clock deadline, a memory ceiling (fed by the byte accounting
// of core::StateStore), and a cooperative CancelToken unified with the
// src/exec cancellation path. Engines poll the budget amortized (every N
// expansions in core::explore, per batch/iteration in the statistical and
// numeric engines) and degrade to a kUnknown verdict carrying the
// StopReason; they never crash on an exhausted budget.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.h"
#include "common/fault.h"
#include "common/verdict.h"

namespace quanta::common {

/// Cooperative cancellation flag shared between a budget's owner and its
/// consumers (engines, the exec thread pool, the watchdog). Consumers poll
/// it between units of work; cancellation is advisory — work already inside
/// a unit runs to the next poll point. exec::CancellationToken is an alias
/// of this class, so one token cancels a symbolic search and a statistical
/// executor job alike.
///
/// Ownership: the token belongs to whoever created it, and it is sticky —
/// nothing in the toolkit ever resets a caller's token (engines and
/// exec::Watchdog only read or set it). A token left cancelled by run N
/// therefore stops run N+1 at its very first poll; callers reusing a token
/// across governed runs (e.g. a checkpoint/resume pair) must reset() it
/// between runs. Engines that need an internal cancellation source (the
/// watchdog's firing target in src/smc) create a fresh token per call
/// precisely so that this footgun cannot arise internally.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kNoMemoryLimit =
      std::numeric_limits<std::size_t>::max();

  /// Default: unlimited (no deadline, no memory ceiling, no token).
  Budget() = default;

  /// Absolute deadline `d` from now.
  static Budget deadline_after(Clock::duration d) {
    Budget b;
    return b.with_deadline_after(d);
  }

  Budget& with_deadline_after(Clock::duration d) {
    deadline_ = Clock::now() + d;
    has_deadline_ = true;
    return *this;
  }
  Budget& with_deadline_at(Clock::time_point t) {
    deadline_ = t;
    has_deadline_ = true;
    return *this;
  }
  Budget& with_memory_limit(std::size_t bytes) {
    memory_limit_ = bytes;
    return *this;
  }
  /// Not owned; must outlive every analysis run under this budget.
  Budget& with_cancel(const CancelToken* token) {
    cancel_ = token;
    return *this;
  }

  /// True when any bound is set — engines skip all polling otherwise.
  bool active() const {
    return has_deadline_ || memory_limit_ != kNoMemoryLimit ||
           cancel_ != nullptr;
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  std::size_t memory_limit() const { return memory_limit_; }
  const CancelToken* cancel_token() const { return cancel_; }

  /// One poll: cancellation first (cheapest, most urgent), then the memory
  /// ceiling against the caller's byte accounting, then the deadline (the
  /// only clock read — amortize calls on hot loops). Returns kCompleted
  /// while every bound still holds.
  StopReason poll(std::size_t memory_bytes_in_use = 0) const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return StopReason::kCancelled;
    }
    if (memory_bytes_in_use > memory_limit_) return StopReason::kMemoryLimit;
    if (has_deadline_) {
      if (FaultInjector::deadline_forced()) return StopReason::kTimeLimit;
      if (Clock::now() >= deadline_) return StopReason::kTimeLimit;
    }
    return StopReason::kCompleted;
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::size_t memory_limit_ = kNoMemoryLimit;
  const CancelToken* cancel_ = nullptr;
};

/// Graceful-degradation wrapper for analysis entry points: runs `body` and
/// absorbs resource failures — std::bad_alloc (real or injected allocation
/// failure) and quanta::ResourceError/FaultError (injected worker faults) —
/// by returning make_unknown(reason) instead of propagating. All other
/// exceptions (std::invalid_argument from argument validation, model
/// construction errors) pass through untouched.
template <typename Fn, typename MakeUnknown>
auto governed(Fn&& body, MakeUnknown&& make_unknown)
    -> std::invoke_result_t<Fn> {
  try {
    return std::forward<Fn>(body)();
  } catch (const std::bad_alloc&) {
    return std::forward<MakeUnknown>(make_unknown)(StopReason::kMemoryLimit);
  } catch (const quanta::ResourceError&) {
    return std::forward<MakeUnknown>(make_unknown)(StopReason::kFault);
  }
}

}  // namespace quanta::common
