// Random number generation used by the statistical engines (SMC, modes DES,
// test generation). A thin, seedable wrapper around std::mt19937_64 so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace quanta::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform01() { return uniform_(engine_); }

  /// Uniform real in [lo, hi]. Requires lo <= hi.
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Exponentially distributed delay with the given rate (> 0).
  double exponential(double rate);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Index drawn according to (unnormalised, non-negative) weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_choice(std::span<const double> weights);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace quanta::common
