// Random number generation used by the statistical engines (SMC, modes DES,
// test generation). A thin, seedable wrapper around std::mt19937_64 so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace quanta::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform01() { return uniform_(engine_); }

  /// Uniform real in [lo, hi]. Requires lo <= hi.
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Exponentially distributed delay with the given rate (> 0).
  double exponential(double rate);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Index drawn according to (unnormalised, non-negative) weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_choice(std::span<const double> weights);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

/// Counter-based splittable seeding: `RngStream(master).seed_for(i)` is the
/// (i+1)-th output of SplitMix64 seeded with `master`, so run i always draws
/// from the same stream regardless of chunking, thread count, or execution
/// order — the keystone of the parallel/sequential bit-identity of the
/// statistical engines (src/exec). Streams of distinct indices are
/// decorrelated by the SplitMix64 finalizer (an avalanching bijection).
class RngStream {
 public:
  explicit RngStream(std::uint64_t master_seed) : master_(master_seed) {}

  /// Stateless SplitMix64 output for the given (seed, counter) pair.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t counter) {
    std::uint64_t z = seed + (counter + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t master_seed() const { return master_; }
  std::uint64_t seed_for(std::uint64_t index) const {
    return mix(master_, index);
  }
  /// The independent generator of run `index`.
  Rng rng(std::uint64_t index) const { return Rng(seed_for(index)); }

 private:
  std::uint64_t master_;
};

}  // namespace quanta::common
