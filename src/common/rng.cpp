#include "common/rng.h"

#include <cmath>
#include <stdexcept>

#include "common/error.h"

namespace quanta::common {

double Rng::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument(quanta::context(
        "common.rng", "Rng::exponential: rate must be positive, got ", rate));
  }
  // Inverse transform sampling; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -std::log(u) / rate;
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) {
    throw std::invalid_argument(quanta::context(
        "common.rng", "Rng::uniform_int: empty range [", lo, ", ", hi, "]"));
  }
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(quanta::context(
          "common.rng", "Rng::weighted_choice: negative weight ", w));
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(quanta::context(
        "common.rng", "Rng::weighted_choice: all ", weights.size(),
        " weights are zero"));
  }
  double target = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: target == total
}

}  // namespace quanta::common
