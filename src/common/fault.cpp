#include "common/fault.h"

#include <csignal>
#include <cstdlib>
#include <new>

#include "common/error.h"

namespace quanta::common {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* spec = std::getenv("QUANTA_FAULT")) {
    arm_from_spec(spec);
  }
}

void FaultInjector::arm(std::string site, FaultKind kind, std::uint64_t after) {
  disarm();
  site_ = std::move(site);
  kind_ = kind;
  remaining_.store(after > 0 ? after : 1, std::memory_order_relaxed);
  fired_.store(false, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

bool FaultInjector::arm_from_spec(const std::string& spec) {
  // All-or-nothing: a malformed spec leaves the injector disarmed rather
  // than silently keeping an earlier arming around.
  disarm();
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  std::string site = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);
  std::uint64_t after = 1;
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    char* endp = nullptr;
    const std::string count = rest.substr(colon + 1);
    const unsigned long long v = std::strtoull(count.c_str(), &endp, 10);
    if (endp == count.c_str() || *endp != '\0' || v == 0) return false;
    after = v;
    rest = rest.substr(0, colon);
  }
  FaultKind kind;
  if (rest == "alloc") {
    kind = FaultKind::kAlloc;
  } else if (rest == "exception") {
    kind = FaultKind::kException;
  } else if (rest == "deadline") {
    kind = FaultKind::kDeadline;
  } else if (rest == "crash") {
    kind = FaultKind::kCrash;
  } else {
    return false;
  }
  arm(std::move(site), kind, after);
  return true;
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
  deadline_forced_.store(false, std::memory_order_relaxed);
  fired_.store(false, std::memory_order_relaxed);
  remaining_.store(0, std::memory_order_relaxed);
  kind_ = FaultKind::kNone;
  site_.clear();
}

void FaultInjector::on_site(const char* name) {
  if (site_ != name) return;
  // Count down atomically; exactly one visitor sees the transition to zero,
  // so concurrent workers fire the fault once.
  std::uint64_t r = remaining_.load(std::memory_order_relaxed);
  for (;;) {
    if (r == 0) return;  // already fired
    if (remaining_.compare_exchange_weak(r, r - 1,
                                         std::memory_order_acq_rel)) {
      if (r != 1) return;  // not this visit yet
      break;
    }
  }
  fired_.store(true, std::memory_order_relaxed);
  switch (kind_) {
    case FaultKind::kAlloc:
      throw std::bad_alloc();
    case FaultKind::kException:
      throw quanta::FaultError("fault-injection",
                               "injected worker fault at site '", site_, "'");
    case FaultKind::kDeadline:
      deadline_forced_.store(true, std::memory_order_relaxed);
      return;
    case FaultKind::kCrash:
      // Die by a genuine SIGSEGV: restore the default disposition first so a
      // sanitizer's handler cannot turn the death into an orderly report —
      // the supervisor must observe a signal-killed child.
      std::signal(SIGSEGV, SIG_DFL);
      std::raise(SIGSEGV);
      return;
    case FaultKind::kNone:
      return;
  }
}

}  // namespace quanta::common
