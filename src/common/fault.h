// Deterministic fault injection for robustness testing. Named sites are
// compiled into the hot paths of the state store, the simulator and the
// thread pool (see DESIGN.md "Fault-injection site registry"); a disarmed
// injector costs one relaxed atomic load per site visit. Arming happens
// programmatically from tests or via the QUANTA_FAULT environment variable:
//
//   QUANTA_FAULT=<site>=<kind>[:<after>]
//
// e.g. QUANTA_FAULT=core.state_store.intern=alloc:500 makes the 500th visit
// of that site throw std::bad_alloc. Kinds:
//   alloc     — throw std::bad_alloc (allocation failure)
//   exception — throw quanta::FaultError (worker-thread failure)
//   deadline  — force Budget::poll to report kTimeLimit from then on
//   crash     — raise(SIGSEGV) with the default disposition restored, so the
//               process dies by a real signal (crash-containment drills; only
//               meaningful under svc process isolation, where the supervisor
//               absorbs the worker death)
// Faults fire exactly once per arming.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace quanta::common {

enum class FaultKind { kNone, kAlloc, kException, kDeadline, kCrash };

class FaultInjector {
 public:
  /// The process-wide injector. The constructor arms from QUANTA_FAULT when
  /// the variable is set (malformed specs leave it disarmed).
  static FaultInjector& instance();

  /// Arms a single fault: the `after`-th visit (1-based; 0 and 1 both mean
  /// the first) of `site` fires `kind`, once. Replaces any earlier arming.
  void arm(std::string site, FaultKind kind, std::uint64_t after = 1);
  /// Parses a QUANTA_FAULT spec; returns false (disarmed) when malformed.
  bool arm_from_spec(const std::string& spec);
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  bool fired() const { return fired_.load(std::memory_order_relaxed); }
  const std::string& armed_site() const { return site_; }

  /// Hot-path site marker. No-op unless armed; throws on the matching visit
  /// (kAlloc / kException) or forces the deadline flag (kDeadline).
  static void site(const char* name) {
    FaultInjector& fi = instance();
    if (!fi.armed_.load(std::memory_order_relaxed)) return;
    fi.on_site(name);
  }

  /// True when an armed kDeadline fault has fired: Budget::poll reports
  /// kTimeLimit regardless of the real clock.
  static bool deadline_forced() {
    FaultInjector& fi = instance();
    return fi.deadline_forced_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector();
  void on_site(const char* name);

  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  std::atomic<bool> deadline_forced_{false};
  std::atomic<std::uint64_t> remaining_{0};  ///< visits left before firing
  // site_/kind_ are written only while disarmed (arm/disarm are not
  // thread-safe against in-flight sites; tests arm before running engines).
  std::string site_;
  FaultKind kind_ = FaultKind::kNone;
};

}  // namespace quanta::common
