#include "common/expr.h"

#include "common/error.h"

namespace quanta::common {

int VarTable::declare(std::string name, Value init, Value min, Value max) {
  if (min > max || init < min || init > max) {
    throw std::invalid_argument("VarTable::declare: inconsistent bounds for " +
                                name);
  }
  decls_.push_back(VarDecl{std::move(name), init, min, max});
  return static_cast<int>(decls_.size()) - 1;
}

int VarTable::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    if (decls_[i].name == name) return static_cast<int>(i);
  }
  throw std::out_of_range("VarTable: unknown variable " + name);
}

Valuation VarTable::initial() const {
  Valuation v;
  v.reserve(decls_.size());
  for (const auto& d : decls_) v.push_back(d.init);
  return v;
}

void VarTable::check_bounds(const Valuation& v) const {
  if (v.size() != decls_.size()) {
    throw std::out_of_range(quanta::context(
        "common.expr", "VarTable::check_bounds: valuation has ", v.size(),
        " entries but ", decls_.size(), " variables are declared"));
  }
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    if (v[i] < decls_[i].min || v[i] > decls_[i].max) {
      throw std::out_of_range(quanta::context(
          "common.expr", "variable ", decls_[i].name, " = ", v[i],
          " outside its declared range [", decls_[i].min, ", ",
          decls_[i].max, "]"));
    }
  }
}

}  // namespace quanta::common
