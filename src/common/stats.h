// Statistical primitives used by the SMC engine and the modes-style
// discrete-event simulator: running moments (Welford), binomial confidence
// intervals (Clopper-Pearson), and Chernoff-Hoeffding sample-size bounds.
#pragma once

#include <cstddef>
#include <utility>

namespace quanta::common {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Clopper-Pearson confidence interval for a binomial proportion
/// with `successes` out of `trials` at confidence level 1 - alpha.
std::pair<double, double> clopper_pearson(std::size_t successes,
                                          std::size_t trials, double alpha);

/// Number of i.i.d. Bernoulli samples required so that the empirical mean is
/// within +-epsilon of the true probability with probability >= 1 - delta
/// (Chernoff-Hoeffding / Okamoto bound, as used by UPPAAL-SMC).
std::size_t chernoff_sample_count(double epsilon, double delta);

/// Regularized incomplete beta function I_x(a, b), exposed for testing.
double incomplete_beta(double a, double b, double x);

}  // namespace quanta::common
