#include "common/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace quanta::common {

std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t clamp) {
  const char* env = std::getenv(name);
  if (env == nullptr) return std::nullopt;
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(env, &endp, 10);
  // strtoull silently wraps negative input; refuse any minus sign.
  if (errno != 0 || endp == env || *endp != '\0' || v < 1 ||
      std::strchr(env, '-') != nullptr) {
    return std::nullopt;
  }
  return v > clamp ? clamp : static_cast<std::uint64_t>(v);
}

}  // namespace quanta::common
