// Discrete-data layer shared by the modelling formalisms (timed automata,
// PTA/STA, BIP components): bounded integer variables, valuations, and
// guard/update callables. Guards and updates over *data* are opaque callables
// (the engines only need to execute them and hash the resulting valuation);
// guards over *clocks* are explicit constraint atoms defined per formalism so
// that symbolic engines can introspect them.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace quanta::common {

using Value = std::int32_t;
using Valuation = std::vector<Value>;

/// Declaration of a bounded integer variable. Bounds are enforced when the
/// engines commit an update (out-of-range values indicate a modelling error).
struct VarDecl {
  std::string name;
  Value init = 0;
  Value min = 0;
  Value max = 0;
};

/// Predicate over the discrete variables.
using DataGuard = std::function<bool(const Valuation&)>;
/// In-place update of the discrete variables.
using DataUpdate = std::function<void(Valuation&)>;

/// The always-true data guard (used when an edge has clock constraints only).
inline bool guard_true(const Valuation&) { return true; }

/// Registry of variable declarations; owned by each model and used to build
/// initial valuations and to validate committed updates.
class VarTable {
 public:
  /// Declares a variable and returns its index.
  int declare(std::string name, Value init, Value min, Value max);

  int index_of(const std::string& name) const;
  std::size_t size() const { return decls_.size(); }
  const VarDecl& decl(int index) const { return decls_.at(index); }
  const std::vector<VarDecl>& decls() const { return decls_; }

  Valuation initial() const;

  /// Throws std::out_of_range if any value violates its declared bounds.
  void check_bounds(const Valuation& v) const;

 private:
  std::vector<VarDecl> decls_;
};

}  // namespace quanta::common
