// Small hashing helpers shared by the state-space exploration engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace quanta::common {

/// Combine a hash value into a running seed (boost::hash_combine recipe,
/// 64-bit variant).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash a contiguous range of integral values.
template <typename It>
std::size_t hash_range(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    hash_combine(seed, std::hash<std::decay_t<decltype(*first)>>{}(*first));
  }
  return seed;
}

template <typename T>
std::size_t hash_vector(const std::vector<T>& v) {
  return hash_range(v.begin(), v.end());
}

}  // namespace quanta::common
