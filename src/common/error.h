// quanta::Error — the common base of runtime failures raised by this
// toolkit. Every message carries the raising subsystem plus enough context
// (automaton / process name, offending value) to diagnose the failure
// without a debugger; context() is the one formatter all throw sites share.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace quanta {

namespace detail {

inline void context_append(std::ostringstream&) {}

template <typename T, typename... Rest>
void context_append(std::ostringstream& os, const T& part, const Rest&... rest) {
  os << part;
  context_append(os, rest...);
}

}  // namespace detail

/// Formats "subsystem: part0part1..." — the uniform shape of every quanta
/// diagnostic. Use it for std:: exception types that must keep their class
/// (std::invalid_argument at validated entry points) as well as for Error.
template <typename... Parts>
std::string context(std::string_view subsystem, const Parts&... parts) {
  std::ostringstream os;
  os << subsystem << ": ";
  detail::context_append(os, parts...);
  return os.str();
}

/// Base of quanta-raised runtime failures. what() == context(subsystem, ...).
class Error : public std::runtime_error {
 public:
  template <typename... Parts>
  Error(std::string_view subsystem, const Parts&... parts)
      : std::runtime_error(context(subsystem, parts...)),
        subsystem_(subsystem) {}

  const std::string& subsystem() const noexcept { return subsystem_; }

 private:
  std::string subsystem_;
};

/// A resource gave out (memory accounting tripped, a worker died of
/// exhaustion). Engine entry points absorb this class — and std::bad_alloc —
/// into a kUnknown verdict instead of crashing (see common/budget.h).
class ResourceError : public Error {
 public:
  using Error::Error;
};

/// Raised by common::FaultInjector at an armed site (QUANTA_FAULT). Derived
/// from ResourceError so the graceful-degradation path treats an injected
/// fault exactly like a real resource failure.
class FaultError : public ResourceError {
 public:
  using ResourceError::ResourceError;
};

}  // namespace quanta
