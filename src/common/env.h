// Strict environment-number parsing, shared by every numeric knob of the
// toolkit (QUANTA_JOBS, QUANTA_CKPT_INTERVAL, the QUANTAD_* daemon knobs).
// One rule everywhere: the whole value must be a positive decimal number —
// empty strings, non-numeric text, zero, anything with a minus sign,
// trailing garbage ("4x") and out-of-range values are rejected as a whole,
// never half-parsed, and the caller falls back to its documented default.
#pragma once

#include <cstdint>
#include <optional>

namespace quanta::common {

/// Reads environment variable `name` as a whole positive decimal number,
/// clamped to `clamp`. Returns nullopt — "use the default" — when the
/// variable is unset or fails the strict rules above.
std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t clamp);

}  // namespace quanta::common
