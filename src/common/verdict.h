// Three-valued analysis verdicts and the uniform stop-reason vocabulary of
// the resource-governance layer. Every engine entry point reports one
// Verdict plus the StopReason that ended its computation; the contract
// (DESIGN.md "Verdict semantics") is:
//
//   * a definite verdict (kHolds / kViolated) is reported ONLY when
//     StopReason is kCompleted — a truncated, timed-out, cancelled or
//     faulted analysis is never a definite no (nor a definite yes);
//   * kUnknown always carries the StopReason saying which budget ran out,
//     together with whatever partial statistics were soundly established.
#pragma once

namespace quanta::common {

/// Why an analysis stopped. kCompleted is the only reason that supports a
/// definite verdict; every other value means graceful degradation.
enum class StopReason {
  kCompleted,    ///< ran to its natural end (goal found / space exhausted)
  kStateLimit,   ///< SearchLimits::max_states (or run/iteration cap) reached
  kTimeLimit,    ///< Budget wall-clock deadline passed
  kMemoryLimit,  ///< Budget memory ceiling exceeded (or allocation failed)
  kCancelled,    ///< the CancelToken fired (user / watchdog cancellation)
  kFault,        ///< an injected or internal fault was absorbed (QUANTA_FAULT)
};

/// Three-valued outcome of a qualitative analysis.
enum class Verdict {
  kHolds,     ///< the property definitely holds
  kViolated,  ///< the property is definitely violated (witness found)
  kUnknown,   ///< a resource budget was hit before a sound answer existed
};

constexpr const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kStateLimit: return "state-limit";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kMemoryLimit: return "memory-limit";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kFault: return "fault";
  }
  return "?";
}

constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

/// The negation used when a property is checked through its dual (A[] safe
/// via E<> !safe, E[] psi via A<> !psi): definite answers flip, unknown
/// stays unknown.
constexpr Verdict negate(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return Verdict::kViolated;
    case Verdict::kViolated: return Verdict::kHolds;
    case Verdict::kUnknown: return Verdict::kUnknown;
  }
  return Verdict::kUnknown;
}

}  // namespace quanta::common
