// Structural state predicates: a callable paired with a canonical textual
// form of its AST, shared by every engine that takes a goal/safety/liveness
// predicate (mc over SymState, game/cora over DigitalState, smc over
// ConcreteState).
//
// The canonical form is what the checkpoint subsystem fingerprints: two
// analyses whose queries differ structurally produce different canonical
// strings, so a checkpoint written for one refuses to resume under the other
// — without callers hand-picking tags. Builders (loc_pred, pred_and/or/not,
// labeled_pred) compose canonical forms; a predicate constructed directly
// from a lambda keeps working but canonicalizes to the indistinct "opaque"
// leaf, and labeled_pred is the escape hatch that makes such a closure
// fingerprint-distinguishable ("opaque[label]").
#pragma once

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

namespace quanta::common {

template <typename S>
class Predicate {
 public:
  using Fn = std::function<bool(const S&)>;

  Predicate() = default;
  Predicate(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from any callable: evaluates it, canonicalizes as "opaque".
  /// Prefer the structural builders (or labeled_pred) wherever a checkpoint
  /// fingerprint must tell predicates apart.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, Predicate> &&
             std::is_invocable_r_v<bool, F, const S&>)
  Predicate(F fn)  // NOLINT(google-explicit-constructor)
      : fn_(std::move(fn)), canon_("opaque") {}

  Predicate(Fn fn, std::string canonical)
      : fn_(std::move(fn)), canon_(std::move(canonical)) {}

  bool operator()(const S& s) const { return fn_(s); }
  explicit operator bool() const { return static_cast<bool>(fn_); }

  /// Canonical serialization of the predicate AST, e.g.
  /// "and(loc(2,1),not(loc(0,3)))". Mixed into checkpoint fingerprints.
  const std::string& canonical() const { return canon_; }

  /// True when no "opaque" leaf occurs: the canonical form then pins down
  /// the predicate completely and fingerprint collisions are impossible.
  bool structural() const { return canon_.find("opaque") == std::string::npos; }

 private:
  Fn fn_;
  std::string canon_ = "none";
};

/// Wraps an opaque closure with a caller-chosen label so its canonical form
/// ("opaque[label]") distinguishes it from other closures. The replacement
/// for the retired ckpt::Options::property_tag, attached to the predicate
/// itself instead of the checkpoint policy.
template <typename S>
Predicate<S> labeled_pred(std::string label,
                          std::function<bool(const S&)> fn) {
  return Predicate<S>(std::move(fn), "opaque[" + std::move(label) + "]");
}

template <typename S>
Predicate<S> pred_and(Predicate<S> a, Predicate<S> b) {
  std::string canon = "and(" + a.canonical() + "," + b.canonical() + ")";
  return Predicate<S>([a = std::move(a), b = std::move(b)](const S& s) {
    return a(s) && b(s);
  }, std::move(canon));
}

template <typename S>
Predicate<S> pred_or(Predicate<S> a, Predicate<S> b) {
  std::string canon = "or(" + a.canonical() + "," + b.canonical() + ")";
  return Predicate<S>([a = std::move(a), b = std::move(b)](const S& s) {
    return a(s) || b(s);
  }, std::move(canon));
}

template <typename S>
Predicate<S> pred_not(Predicate<S> a) {
  std::string canon = "not(" + a.canonical() + ")";
  return Predicate<S>([a = std::move(a)](const S& s) { return !a(s); },
                      std::move(canon));
}

/// "Process p is in location l" over any state type with a `locs` vector
/// (SymState, DigitalState). The canonical form uses the resolved indices —
/// stable under renaming, distinct across structurally different targets.
template <typename S>
Predicate<S> loc_index_pred(int process, int location) {
  std::string canon = "loc(" + std::to_string(process) + "," +
                      std::to_string(location) + ")";
  return Predicate<S>([process, location](const S& s) {
    return s.locs[static_cast<std::size_t>(process)] == location;
  }, std::move(canon));
}

}  // namespace quanta::common
