// Helpers for packing exploration-state components into ZonePool payloads.
// Every component the engines pool (location vectors, variable valuations,
// digital clock vectors) is a contiguous run of 32-bit integers, so packing
// is a span view or a copy through the pool's scratch buffer — never a
// bespoke serializer. Shared by the StateTraits specializations that opt
// into pooled storage (ta/traits.h, bip/traits.h, ecdar/refinement.cpp).
#pragma once

#include <cstring>
#include <vector>

#include "store/pool.h"

namespace quanta::store {

/// Interns a vector of 32-bit integers (int, Value, int32 clocks) as-is.
template <typename T>
  requires(sizeof(T) == sizeof(std::int32_t))
inline Ref intern_vec(ZonePool& p, const std::vector<T>& v) {
  return p.intern({reinterpret_cast<const std::int32_t*>(v.data()), v.size()});
}

/// Element-wise equality between an interned payload and a live vector.
template <typename T>
  requires(sizeof(T) == sizeof(std::int32_t))
inline bool vec_equals(const ZonePool& p, Ref r, const std::vector<T>& v) {
  const std::span<const std::int32_t> d = p.data(r);
  if (d.size() != v.size()) return false;
  return v.empty() || std::memcmp(d.data(), v.data(), d.size_bytes()) == 0;
}

/// Materializes an interned payload back into a vector.
template <typename T>
  requires(sizeof(T) == sizeof(std::int32_t))
inline void unpack_vec(const ZonePool& p, Ref r, std::vector<T>& out) {
  const std::span<const std::int32_t> d = p.data(r);
  out.assign(d.begin(), d.end());
}

}  // namespace quanta::store
