// store::ZonePool — interned, refcounted, arena-allocated storage for the
// fixed-width int32 payloads behind exploration states: DBM zone matrices,
// discrete location/variable vectors, digital clock vectors. Identical
// payloads are rampant across a zone graph (the same zone reappears in many
// discrete partitions, the same discrete part under many zones), so interning
// by content collapses them to one copy addressed by a 32-bit Ref.
//
// Three layers, all behind the same Ref:
//   * an open-addressed content-hash table deduplicating payloads;
//   * a bump-pointer chunk arena (no per-payload malloc, no per-payload
//     allocator metadata);
//   * an optional spill tier (store::SpillFile): when resident arena bytes
//     exceed the configured ceiling, the oldest full chunks are evicted to a
//     memory-mapped file record by record, and reads resolve transparently
//     through the mapping. Cold-first (FIFO chunk) eviction matches zone-
//     graph access patterns, where the frontier touches recent states.
//
// Determinism: Ref values, record order and every intern() outcome are a
// pure function of the intern-call sequence — never of the eviction
// schedule, the spill path, or the memory ceiling. Spilling moves bytes, not
// identity, so a search over a pooled store is bit-identical with the spill
// tier on, off, or thrashing.
//
// The pool is single-writer (like the StateStore that owns it) and not
// thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/spill.h"

namespace quanta::store {

/// Index of an interned payload record. Stable for the pool's lifetime.
using Ref = std::uint32_t;
inline constexpr Ref kNullRef = std::numeric_limits<Ref>::max();

/// Resource envelope of a pool. Default: everything resident, no spill.
struct PoolConfig {
  /// Arena bytes kept in RAM before cold chunks are evicted to the spill
  /// file. Ignored unless a spill path is set.
  std::size_t resident_limit = std::numeric_limits<std::size_t>::max();
  /// Spill file path; empty disables the spill tier entirely.
  std::string spill_path;
  /// Sparse capacity reserved for the spill mapping.
  std::size_t spill_cap_bytes = std::size_t{1} << 37;  // 128 GiB, sparse
  /// Arena chunk size in int32 words; 0 derives it automatically: 64 Ki
  /// words (256 KiB) normally, scaled down under a tight resident_limit so
  /// the ceiling still yields several evictable chunks (only full, non-newest
  /// chunks are eviction candidates — a ceiling below one chunk would
  /// otherwise never spill anything).
  std::size_t chunk_words = 0;
};

/// QUANTA_STORE_MEM / QUANTA_STORE_SPILL environment knobs, parsed with the
/// same strictness as QUANTA_JOBS (exec/thread_pool.cpp): QUANTA_STORE_MEM
/// must be a whole positive decimal byte count with an optional single
/// K/M/G (binary) suffix — trailing garbage, empty strings, zero and
/// overflow all fall back to "unlimited" rather than half-parsing.
/// QUANTA_STORE_SPILL names the spill file (empty/unset keeps spill off).
PoolConfig pool_config_from_env();

/// Strict byte-count parser behind QUANTA_STORE_MEM, exposed for tests.
/// Returns false on any malformed input, leaving *out untouched.
bool parse_memory_bytes(const char* text, std::size_t* out);

/// Occupancy/traffic snapshot for instrumentation and benches.
struct PoolMetrics {
  std::size_t records = 0;        ///< distinct interned payloads
  std::size_t lookups = 0;        ///< intern() calls
  std::size_t hits = 0;           ///< intern() calls answered by sharing
  std::size_t payload_words = 0;  ///< total distinct payload, in int32 words
  std::size_t logical_words = 0;  ///< payload words over ALL interns (as if
                                  ///< nothing were shared) — baseline volume
  std::size_t resident_bytes = 0; ///< arena payload currently in RAM
  std::size_t spilled_bytes = 0;  ///< payload evicted to the spill file
  std::size_t spilled_records = 0;
  std::size_t spill_failures = 0; ///< failed/refused spill writes

  /// Fraction of interns answered by an existing record.
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ZonePool {
 public:
  explicit ZonePool(PoolConfig cfg = {});

  ZonePool(ZonePool&&) = default;
  ZonePool& operator=(ZonePool&&) = default;

  /// Interns a payload: returns the Ref of the existing record with equal
  /// content (refcount bumped) or copies the payload into the arena under a
  /// fresh Ref. Empty payloads are valid and intern like any other.
  Ref intern(std::span<const std::int32_t> words);

  /// The payload behind a Ref, wherever it lives (arena or spill file).
  /// The span is invalidated by the next intern() — evictions triggered by
  /// an insertion may move the bytes it points at.
  std::span<const std::int32_t> data(Ref ref) const;

  std::uint32_t size(Ref ref) const { return records_[ref].len; }
  std::uint32_t refcount(Ref ref) const { return records_[ref].refs; }

  void retain(Ref ref) { ++records_[ref].refs; }
  /// Drops one reference; returns true when the record became dead. Dead
  /// records keep their Ref and their table entry (an equal payload interned
  /// later revives them); their storage is reclaimed with the pool.
  bool release(Ref ref) { return --records_[ref].refs == 0; }

  /// RAM held by the pool: resident arena chunks plus record/table/chunk
  /// bookkeeping. Spilled payload is explicitly NOT counted — it lives in
  /// clean file-backed pages the kernel can drop at will.
  std::size_t memory_bytes() const;

  PoolMetrics metrics() const;
  const PoolConfig& config() const { return cfg_; }
  /// True while the spill tier is usable (configured and no write failed).
  bool spill_ok() const { return spill_.ok(); }

  /// Reusable encode buffer for StateTraits payload packing — avoids a heap
  /// allocation per intern on the hot path.
  std::vector<std::int32_t>& scratch() { return scratch_; }

 private:
  struct Record {
    std::uint64_t hash = 0;
    std::uint32_t len = 0;   ///< payload words
    std::uint32_t refs = 0;
    std::int32_t chunk = -1; ///< arena chunk index, or kSpilled
    std::size_t offset = 0;  ///< word offset in chunk / byte offset in spill
  };
  static constexpr std::int32_t kSpilled = -1;
  static constexpr std::size_t kChunkWords = std::size_t{1} << 16;  // 256 KiB
  static constexpr std::size_t kMinChunkWords = std::size_t{1} << 6;  // 256 B

  static std::uint64_t content_hash(std::span<const std::int32_t> words);
  bool record_equals(const Record& r, std::uint64_t h,
                     std::span<const std::int32_t> words) const;
  const std::int32_t* record_words(const Record& r) const;
  void grow_table();
  std::int32_t* arena_alloc(std::size_t words, std::int32_t* chunk,
                            std::size_t* offset);
  void maybe_evict();
  void evict_chunk(std::size_t chunk);

  PoolConfig cfg_;
  std::size_t chunk_capacity_ = kChunkWords;  ///< words per arena chunk
  bool spill_enabled_ = false;
  SpillFile spill_;
  std::vector<Record> records_;
  std::vector<Ref> table_;  ///< open-addressed, power-of-two capacity
  std::vector<std::unique_ptr<std::int32_t[]>> chunks_;
  std::vector<std::size_t> chunk_words_;          ///< capacity per chunk
  std::vector<std::vector<Ref>> chunk_records_;   ///< records per chunk
  std::size_t chunk_used_ = 0;      ///< words used in the newest chunk
  std::size_t next_evict_ = 0;      ///< first chunk not yet evicted
  std::size_t resident_words_ = 0;  ///< words in live arena chunks
  std::size_t payload_words_ = 0;
  std::size_t logical_words_ = 0;
  std::size_t lookups_ = 0;
  std::size_t hits_ = 0;
  std::size_t spilled_words_ = 0;
  std::size_t spilled_records_ = 0;
  std::size_t spill_failures_ = 0;
  std::vector<std::int32_t> scratch_;
};

}  // namespace quanta::store
