#include "store/spill.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <limits>
#include <utility>

#include "common/fault.h"

namespace quanta::store {

namespace {

// 16-byte header: magic + format version + record word size. Nothing after
// it is self-describing — record boundaries live in the pool's in-memory
// metadata — so the header exists to make a spill file recognizable, not
// resumable. Layout changes bump the version.
constexpr char kMagic[8] = {'Q', 'S', 'P', 'L', '1', '\0', '\0', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;

bool write_all(int fd, const void* buf, std::size_t len, std::size_t offset) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    p += n;
    offset += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SpillFile::~SpillFile() { close_all(); }

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      failed_(std::exchange(other.failed_, false)),
      map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      tail_(std::exchange(other.tail_, 0)),
      path_(std::move(other.path_)) {}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    close_all();
    fd_ = std::exchange(other.fd_, -1);
    failed_ = std::exchange(other.failed_, false);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    tail_ = std::exchange(other.tail_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

void SpillFile::close_all() noexcept {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SpillFile::open(const std::string& path, std::size_t cap_bytes) {
  close_all();
  failed_ = false;
  tail_ = 0;
  path_ = path;
  if (path.empty() || cap_bytes <= kHeaderBytes) return false;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return false;
  std::uint8_t header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  std::memcpy(header + 8, &kVersion, sizeof(kVersion));
  const std::uint32_t word = sizeof(std::int32_t);
  std::memcpy(header + 12, &word, sizeof(word));
  if (!write_all(fd_, header, kHeaderBytes, 0) ||
      ::ftruncate(fd_, static_cast<off_t>(cap_bytes)) != 0) {
    close_all();
    return false;
  }
  // Read-only mapping over the sparse capacity: pages written via pwrite
  // stay clean here, so the kernel can reclaim them freely.
  void* m = ::mmap(nullptr, cap_bytes, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) {
    close_all();
    return false;
  }
  map_ = static_cast<const std::uint8_t*>(m);
  map_bytes_ = cap_bytes;
  tail_ = kHeaderBytes;
  return true;
}

std::size_t SpillFile::append(const std::int32_t* words, std::size_t count) {
  if (!ok()) return std::numeric_limits<std::size_t>::max();
  const std::size_t bytes = count * sizeof(std::int32_t);
  if (tail_ + bytes > map_bytes_) {
    failed_ = true;  // capacity exhausted: stop spilling, keep data resident
    return std::numeric_limits<std::size_t>::max();
  }
  try {
    common::FaultInjector::site("store.spill.write");
    if (!write_all(fd_, words, bytes, tail_)) {
      failed_ = true;
      return std::numeric_limits<std::size_t>::max();
    }
  } catch (...) {
    // Injected or real write failure: the record was not durably written, so
    // the caller must keep it resident. The file is poisoned — a partial
    // record below a later append would corrupt reads.
    failed_ = true;
    return std::numeric_limits<std::size_t>::max();
  }
  const std::size_t offset = tail_;
  tail_ += bytes;
  return offset;
}

std::span<const std::int32_t> SpillFile::read(std::size_t offset,
                                              std::size_t count) const {
  const std::size_t bytes = count * sizeof(std::int32_t);
  if (map_ == nullptr || offset < kHeaderBytes || offset % sizeof(std::int32_t) != 0 ||
      offset + bytes > tail_) {
    return {};
  }
  return {reinterpret_cast<const std::int32_t*>(map_ + offset), count};
}

}  // namespace quanta::store
