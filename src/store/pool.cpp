#include "store/pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace quanta::store {

namespace {
constexpr std::size_t kInitialTable = std::size_t{1} << 10;
}

bool parse_memory_bytes(const char* text, std::size_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &endp, 10);
  if (errno != 0 || endp == text || v == 0) return false;
  // A leading '-' parses "successfully" through strtoull's wraparound;
  // reject it explicitly like every other non-digit prefix.
  if (text[0] == '-' || text[0] == '+') return false;
  std::size_t mult = 1;
  if (*endp == 'K' || *endp == 'k') {
    mult = std::size_t{1} << 10;
    ++endp;
  } else if (*endp == 'M' || *endp == 'm') {
    mult = std::size_t{1} << 20;
    ++endp;
  } else if (*endp == 'G' || *endp == 'g') {
    mult = std::size_t{1} << 30;
    ++endp;
  }
  if (*endp != '\0') return false;  // trailing garbage: reject whole value
  if (v > std::numeric_limits<std::size_t>::max() / mult) return false;
  *out = static_cast<std::size_t>(v) * mult;
  return true;
}

PoolConfig pool_config_from_env() {
  PoolConfig cfg;
  if (const char* env = std::getenv("QUANTA_STORE_SPILL")) {
    if (*env != '\0') cfg.spill_path = env;
  }
  if (const char* env = std::getenv("QUANTA_STORE_MEM")) {
    std::size_t bytes = 0;
    if (parse_memory_bytes(env, &bytes)) cfg.resident_limit = bytes;
  }
  return cfg;
}

ZonePool::ZonePool(PoolConfig cfg) : cfg_(std::move(cfg)) {
  table_.assign(kInitialTable, kNullRef);
  chunk_capacity_ = cfg_.chunk_words;
  if (chunk_capacity_ == 0) {
    chunk_capacity_ = kChunkWords;
    if (!cfg_.spill_path.empty() &&
        cfg_.resident_limit != std::numeric_limits<std::size_t>::max()) {
      // Aim for >= 4 chunks under the ceiling so FIFO eviction has cold,
      // non-newest chunks to work with even when the ceiling is tiny.
      chunk_capacity_ = std::clamp(
          cfg_.resident_limit / sizeof(std::int32_t) / 4, kMinChunkWords,
          kChunkWords);
    }
  }
  if (!cfg_.spill_path.empty()) {
    spill_enabled_ = spill_.open(cfg_.spill_path, cfg_.spill_cap_bytes);
    if (!spill_enabled_) ++spill_failures_;
  }
}

std::uint64_t ZonePool::content_hash(std::span<const std::int32_t> words) {
  // FNV-1a over the raw bytes: cheap, deterministic across runs, and the
  // same recipe the checkpoint fingerprints use.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const std::uint8_t*>(words.data());
  for (std::size_t i = 0; i < words.size_bytes(); ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

const std::int32_t* ZonePool::record_words(const Record& r) const {
  if (r.chunk != kSpilled) {
    return chunks_[static_cast<std::size_t>(r.chunk)].get() + r.offset;
  }
  return spill_.read(r.offset, r.len).data();
}

bool ZonePool::record_equals(const Record& r, std::uint64_t h,
                             std::span<const std::int32_t> words) const {
  if (r.hash != h || r.len != words.size()) return false;
  if (words.empty()) return true;
  const std::int32_t* mine = record_words(r);
  // A spilled record whose bytes cannot be served (externally damaged file)
  // compares unequal: the incoming payload is then stored fresh — a memory
  // regression under corruption, never a wrong answer or a crash.
  if (mine == nullptr) return false;
  return std::memcmp(mine, words.data(), words.size_bytes()) == 0;
}

void ZonePool::grow_table() {
  std::vector<Ref> bigger(table_.size() * 2, kNullRef);
  const std::size_t mask = bigger.size() - 1;
  for (Ref ref : table_) {
    if (ref == kNullRef) continue;
    std::size_t i = records_[ref].hash & mask;
    while (bigger[i] != kNullRef) i = (i + 1) & mask;
    bigger[i] = ref;
  }
  table_ = std::move(bigger);
}

std::int32_t* ZonePool::arena_alloc(std::size_t words, std::int32_t* chunk,
                                    std::size_t* offset) {
  if (chunks_.empty() || chunk_used_ + words > chunk_words_.back()) {
    const std::size_t cap = words > chunk_capacity_ ? words : chunk_capacity_;
    chunks_.push_back(std::make_unique<std::int32_t[]>(cap));
    chunk_words_.push_back(cap);
    chunk_records_.emplace_back();
    chunk_used_ = 0;
    resident_words_ += cap;
    maybe_evict();
  }
  *chunk = static_cast<std::int32_t>(chunks_.size() - 1);
  *offset = chunk_used_;
  chunk_used_ += words;
  return chunks_.back().get() + *offset;
}

void ZonePool::maybe_evict() {
  if (!spill_.ok()) return;
  // Only full (non-newest) chunks are eviction candidates; the newest chunk
  // is still being written into.
  while (resident_words_ * sizeof(std::int32_t) > cfg_.resident_limit &&
         next_evict_ + 1 < chunks_.size()) {
    evict_chunk(next_evict_);
    ++next_evict_;
    if (!spill_.ok()) return;  // write failed mid-eviction: stop here
  }
}

void ZonePool::evict_chunk(std::size_t chunk) {
  for (Ref ref : chunk_records_[chunk]) {
    Record& r = records_[ref];
    const std::size_t off =
        spill_.append(chunks_[chunk].get() + r.offset, r.len);
    if (off == std::numeric_limits<std::size_t>::max()) {
      // This record (and the rest of the chunk) stays resident; the spill
      // tier is now failed, so no further eviction is attempted.
      ++spill_failures_;
      return;
    }
    r.chunk = kSpilled;
    r.offset = off;
    spilled_words_ += r.len;
    ++spilled_records_;
  }
  resident_words_ -= chunk_words_[chunk];
  chunks_[chunk].reset();
  chunk_records_[chunk].clear();
  chunk_records_[chunk].shrink_to_fit();
}

Ref ZonePool::intern(std::span<const std::int32_t> words) {
  ++lookups_;
  logical_words_ += words.size();
  const std::uint64_t h = content_hash(words);
  const std::size_t mask = table_.size() - 1;
  std::size_t i = h & mask;
  while (table_[i] != kNullRef) {
    const Ref ref = table_[i];
    if (record_equals(records_[ref], h, words)) {
      ++hits_;
      ++records_[ref].refs;
      return ref;
    }
    i = (i + 1) & mask;
  }
  const Ref ref = static_cast<Ref>(records_.size());
  Record r;
  r.hash = h;
  r.len = static_cast<std::uint32_t>(words.size());
  r.refs = 1;
  if (!words.empty()) {
    // NOTE: arena_alloc may evict older chunks, but never the newest one it
    // just carved this payload from, so the destination stays valid.
    std::int32_t* dst = arena_alloc(words.size(), &r.chunk, &r.offset);
    std::memcpy(dst, words.data(), words.size_bytes());
    chunk_records_[static_cast<std::size_t>(r.chunk)].push_back(ref);
  }  // len == 0 needs no storage; data() short-circuits on it.
  payload_words_ += words.size();
  records_.push_back(r);
  table_[i] = ref;
  if (records_.size() * 2 >= table_.size()) grow_table();
  return ref;
}

std::span<const std::int32_t> ZonePool::data(Ref ref) const {
  const Record& r = records_[ref];
  if (r.len == 0) return {};
  if (r.chunk != kSpilled) {
    return {chunks_[static_cast<std::size_t>(r.chunk)].get() + r.offset,
            r.len};
  }
  return spill_.read(r.offset, r.len);
}

std::size_t ZonePool::memory_bytes() const {
  return resident_words_ * sizeof(std::int32_t) +
         records_.capacity() * sizeof(Record) +
         table_.capacity() * sizeof(Ref) +
         records_.size() * sizeof(Ref) +  // chunk_records_ entries
         scratch_.capacity() * sizeof(std::int32_t);
}

PoolMetrics ZonePool::metrics() const {
  PoolMetrics m;
  m.records = records_.size();
  m.lookups = lookups_;
  m.hits = hits_;
  m.payload_words = payload_words_;
  m.logical_words = logical_words_;
  m.resident_bytes = resident_words_ * sizeof(std::int32_t);
  m.spilled_bytes = spilled_words_ * sizeof(std::int32_t);
  m.spilled_records = spilled_records_;
  m.spill_failures = spill_failures_;
  return m;
}

}  // namespace quanta::store
