// store::SpillFile — the out-of-core tier of the zone pool: an append-only,
// memory-mapped file of fixed-width int32 records (the same word-for-word
// payload layout QCKPD1 snapshots use for zone matrices, so a spilled record
// is bit-identical to its serialized form).
//
// Writes go through pwrite() so the mapped pages stay *clean*: the kernel
// may drop them under memory pressure and page them back in on demand, which
// is exactly the out-of-core behaviour we want — resident set stays bounded
// by the arena budget while reads through the read-only mapping cost one
// page fault on a cold record and nothing on a warm one.
//
// Failure policy: every operation degrades instead of throwing. A failed
// open/extend/write marks the file failed; the pool then keeps payloads
// resident (correct, just no longer bounded) and counts the failure in its
// metrics. Reads are bounds-checked against the written high-water mark, so
// a short or failed write can never hand out bytes that were not durably
// produced by this process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace quanta::store {

class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;

  /// Creates/truncates `path`, writes the QSPL1 header and maps a sparse
  /// region of `cap_bytes`. Any pre-existing content — including a file left
  /// truncated mid-record by a crashed or interfered-with run — is discarded
  /// wholesale: the spill tier is a cache rebuilt from interned state, so the
  /// only safe reaction to a suspect file is a fresh start. Returns false
  /// (and stays disabled) when the file cannot be created or mapped.
  bool open(const std::string& path, std::size_t cap_bytes);

  /// True when the file is usable (open succeeded, no write has failed).
  bool ok() const { return fd_ >= 0 && !failed_; }

  /// Appends `words` int32s; returns the byte offset of the record or
  /// SIZE_MAX on failure (the file is then marked failed). Fault-injection
  /// site "store.spill.write" fires before the write.
  std::size_t append(const std::int32_t* words, std::size_t count);

  /// Zero-copy read through the mapping. Returns an empty span unless the
  /// whole record lies below the written high-water mark.
  std::span<const std::int32_t> read(std::size_t offset,
                                     std::size_t count) const;

  /// Bytes appended so far (the high-water mark reads are checked against).
  std::size_t written_bytes() const { return tail_; }
  const std::string& path() const { return path_; }

 private:
  void close_all() noexcept;

  int fd_ = -1;
  bool failed_ = false;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t tail_ = 0;  ///< next append offset (starts past the header)
  std::string path_;
};

}  // namespace quanta::store
