// Concrete (real-valued) semantics of a network of timed automata, used by
// the statistical model checker (UPPAAL-SMC style simulation) and by test
// execution adapters.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "ta/model.h"
#include "ta/symbolic.h"

namespace quanta::ta {

struct ConcreteState {
  std::vector<int> locs;
  Valuation vars;
  /// clocks[0] is the reference clock and stays 0.
  std::vector<double> clocks;
};

class ConcreteSemantics {
 public:
  static constexpr double kInfDelay = std::numeric_limits<double>::infinity();

  explicit ConcreteSemantics(const System& sys) : sym_(sys) {}

  const System& system() const { return sym_.system(); }

  ConcreteState initial() const;

  /// Maximum delay allowed by process p's location invariant (kInfDelay if
  /// unbounded). Diagonal invariant constraints are included.
  double invariant_max_delay(const ConcreteState& s, int process) const;
  /// Minimum over all processes.
  double invariant_max_delay(const ConcreteState& s) const;

  bool invariant_satisfied(const ConcreteState& s) const;

  /// Clock + data guard of the edge, evaluated at the current valuation.
  bool guard_satisfied(const Edge& e, const ConcreteState& s) const;

  /// Smallest additional delay d >= 0 after which the clock guard of `e`
  /// holds (data guard is not considered); kInfDelay if no such delay.
  double min_enabling_delay(const Edge& e, const ConcreteState& s) const;
  /// Largest delay d such that the clock guard of `e` still holds at s+d,
  /// assuming it holds at min_enabling_delay; kInfDelay if unbounded.
  double max_enabling_delay(const Edge& e, const ConcreteState& s) const;

  void delay(ConcreteState& s, double d) const;

  /// Executes a discrete move (resets + data updates + location change).
  /// `branch_choice[k]` selects the probabilistic branch of participant k's
  /// edge (-1 / missing entries mean the edge is Dirac).
  void execute(ConcreteState& s, const Move& m,
               std::span<const int> branch_choice = {}) const;

  /// Moves whose data guards, committed filter and clock guards are all
  /// satisfied right now.
  std::vector<Move> enabled_moves_now(const ConcreteState& s) const;

  const SymbolicSemantics& symbolic() const { return sym_; }

 private:
  SymbolicSemantics sym_;
};

}  // namespace quanta::ta
