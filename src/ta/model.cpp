#include "ta/model.h"

#include <algorithm>
#include <stdexcept>

#include "common/error.h"

namespace quanta::ta {

EdgeEffect resolve_effect(const Edge& e, int branch) {
  if (branch < 0) {
    if (e.probabilistic()) {
      throw std::logic_error("resolve_effect: probabilistic edge needs branch");
    }
    return EdgeEffect{e.target, &e.resets, &e.update};
  }
  const ProbBranch& b = e.branches.at(static_cast<std::size_t>(branch));
  return EdgeEffect{b.target, &b.resets, &b.update};
}

int Process::location_index(const std::string& name) const {
  for (std::size_t i = 0; i < locations.size(); ++i) {
    if (locations[i].name == name) return static_cast<int>(i);
  }
  throw std::out_of_range("Process " + this->name + ": unknown location " + name);
}

int ProcessBuilder::location(std::string name,
                             std::vector<ClockConstraint> invariant,
                             bool committed, bool urgent, double exit_rate) {
  p_.locations.push_back(Location{std::move(name), std::move(invariant),
                                  committed, urgent, exit_rate});
  return static_cast<int>(p_.locations.size()) - 1;
}

int ProcessBuilder::edge(int source, int target) {
  Edge e;
  e.source = source;
  e.target = target;
  p_.edges.push_back(std::move(e));
  return static_cast<int>(p_.edges.size()) - 1;
}

int ProcessBuilder::edge(int source, int target,
                         std::vector<ClockConstraint> guard, int channel,
                         SyncKind sync, std::vector<std::pair<int, Value>> resets,
                         DataGuard data_guard, DataUpdate update,
                         std::string label) {
  Edge e;
  e.source = source;
  e.target = target;
  e.guard = std::move(guard);
  e.channel = channel;
  e.sync = sync;
  e.resets = std::move(resets);
  e.data_guard = std::move(data_guard);
  e.update = std::move(update);
  e.label = std::move(label);
  p_.edges.push_back(std::move(e));
  return static_cast<int>(p_.edges.size()) - 1;
}

int System::add_clock(std::string name) {
  clock_names_.push_back(std::move(name));
  return static_cast<int>(clock_names_.size());  // ids start at 1
}

int System::add_channel(std::string name, bool broadcast, bool urgent) {
  channels_.push_back(Channel{std::move(name), broadcast, urgent});
  return static_cast<int>(channels_.size()) - 1;
}

int System::add_channel_array(const std::string& name, int count,
                              bool broadcast, bool urgent) {
  if (count <= 0) throw std::invalid_argument(quanta::context(
        "ta.model", "add_channel_array(", name,
        "): count must be positive, got ", count));
  int base = channel_count();
  for (int i = 0; i < count; ++i) {
    add_channel(name + "[" + std::to_string(i) + "]", broadcast, urgent);
  }
  return base;
}

int System::add_process(Process p) {
  if (p.locations.empty()) {
    throw std::invalid_argument("add_process: process has no locations");
  }
  processes_.push_back(std::move(p));
  return static_cast<int>(processes_.size()) - 1;
}

int System::process_index(const std::string& name) const {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].name == name) return static_cast<int>(i);
  }
  throw std::out_of_range("System: unknown process " + name);
}

bool System::has_probabilistic() const {
  for (const auto& p : processes_) {
    for (const auto& e : p.edges) {
      if (e.probabilistic()) return true;
    }
  }
  return false;
}

std::vector<std::int32_t> System::max_constants() const {
  std::vector<std::int32_t> k(static_cast<std::size_t>(dim()), 0);
  auto scan = [&k](const std::vector<ClockConstraint>& ccs) {
    for (const auto& c : ccs) {
      if (c.bound >= dbm::kInf) continue;
      std::int32_t v = dbm::bound_value(c.bound);
      // x_i - x_j <= v constrains clock i from above by |v| and clock j from
      // below by |v|; take absolute values conservatively for both.
      std::int32_t a = std::abs(v);
      if (c.i != 0) k[static_cast<std::size_t>(c.i)] = std::max(k[c.i], a);
      if (c.j != 0) k[static_cast<std::size_t>(c.j)] = std::max(k[c.j], a);
    }
  };
  for (const auto& p : processes_) {
    for (const auto& l : p.locations) scan(l.invariant);
    for (const auto& e : p.edges) scan(e.guard);
  }
  for (const auto& [clock, value] : max_const_hints_) {
    k[static_cast<std::size_t>(clock)] =
        std::max(k[static_cast<std::size_t>(clock)], value);
  }
  return k;
}

void System::bump_max_constant(int clock, std::int32_t value) {
  if (clock < 1 || clock >= dim() || value < 0) {
    throw std::invalid_argument(quanta::context(
        "ta.model", "bump_max_constant: clock index ", clock,
        " must lie in [1, ", dim() - 1, "] and value ", value,
        " must be non-negative"));
  }
  max_const_hints_.emplace_back(clock, value);
}

void System::validate() const {
  for (const auto& p : processes_) {
    int nloc = static_cast<int>(p.locations.size());
    if (p.initial < 0 || p.initial >= nloc) {
      throw std::invalid_argument("process " + p.name + ": bad initial location");
    }
    for (const auto& e : p.edges) {
      if (e.source < 0 || e.source >= nloc || e.target < 0 || e.target >= nloc) {
        throw std::invalid_argument("process " + p.name + ": edge endpoint out of range");
      }
      if (e.sync != SyncKind::kNone && e.channel < 0 && !e.channel_fn) {
        throw std::invalid_argument("process " + p.name +
                                    ": synchronising edge without channel");
      }
      if (e.sync == SyncKind::kNone && (e.channel >= 0 || e.channel_fn)) {
        throw std::invalid_argument("process " + p.name +
                                    ": channel set on non-synchronising edge");
      }
      if (e.channel >= channel_count()) {
        throw std::invalid_argument("process " + p.name + ": undeclared channel");
      }
      for (const auto& [clock, value] : e.resets) {
        if (clock < 1 || clock >= dim() || value < 0) {
          throw std::invalid_argument("process " + p.name + ": bad reset");
        }
      }
      for (const auto& b : e.branches) {
        if (b.weight <= 0.0) {
          throw std::invalid_argument("process " + p.name +
                                      ": non-positive branch weight");
        }
        if (b.target < 0 || b.target >= nloc) {
          throw std::invalid_argument("process " + p.name +
                                      ": branch target out of range");
        }
        for (const auto& [clock, value] : b.resets) {
          if (clock < 1 || clock >= dim() || value < 0) {
            throw std::invalid_argument("process " + p.name +
                                        ": bad branch reset");
          }
        }
      }
      auto check_ccs = [this, &p](const std::vector<ClockConstraint>& ccs) {
        for (const auto& c : ccs) {
          if (c.i < 0 || c.i >= dim() || c.j < 0 || c.j >= dim() || c.i == c.j) {
            throw std::invalid_argument("process " + p.name +
                                        ": clock constraint out of range");
          }
        }
      };
      check_ccs(e.guard);
    }
    for (const auto& l : p.locations) {
      for (const auto& c : l.invariant) {
        if (c.i < 0 || c.i >= dim() || c.j < 0 || c.j >= dim()) {
          throw std::invalid_argument("location " + l.name +
                                      ": invariant clock out of range");
        }
      }
      if (l.committed && l.urgent) {
        throw std::invalid_argument("location " + l.name +
                                    ": cannot be both committed and urgent");
      }
    }
  }
}

}  // namespace quanta::ta
