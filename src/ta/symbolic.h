// Symbolic (zone-based) semantics of a network of timed automata: the
// transition system over (location vector, variable valuation, zone) explored
// by the model-checking engines. Zones are stored delay-closed and
// invariant-constrained, with optional max-bounds extrapolation to guarantee
// a finite zone graph.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dbm/dbm.h"
#include "ta/model.h"

namespace quanta::ta {

struct SymState {
  std::vector<int> locs;
  Valuation vars;
  dbm::Dbm zone{1};

  /// Hash of the discrete part only (location vector + variables); zones are
  /// compared via inclusion inside each discrete bucket.
  std::size_t discrete_hash() const;
  bool same_discrete(const SymState& other) const {
    return locs == other.locs && vars == other.vars;
  }
};

/// A global discrete move: one internal edge, a binary sender/receiver pair,
/// or a broadcast sender with its (possibly empty) receiver set. Each entry
/// is (process index, edge index); the sender/internal edge comes first.
struct Move {
  std::vector<std::pair<int, int>> participants;

  std::string describe(const System& sys) const;
};

struct SymTransition {
  Move move;
  SymState state;
};

class SymbolicSemantics {
 public:
  struct Options {
    bool extrapolate = true;
  };

  explicit SymbolicSemantics(const System& sys)
      : SymbolicSemantics(sys, Options{}) {}
  SymbolicSemantics(const System& sys, Options opts);

  const System& system() const { return *sys_; }

  SymState initial() const;

  /// All discrete successors (each already delay-closed / extrapolated).
  std::vector<SymTransition> successors(const SymState& s) const;

  /// Discrete moves enabled at the data level (guards over variables,
  /// committed-location filtering, sync matching). Zone-level enabledness is
  /// checked when the move is applied.
  std::vector<Move> enabled_moves(const std::vector<int>& locs,
                                  const Valuation& vars) const;

  /// Applies a move; returns nullopt if the zone becomes empty.
  std::optional<SymState> apply_move(const SymState& s, const Move& m) const;

  /// The conjunction of location invariants as a zone constraint applied to z.
  bool constrain_invariant(const std::vector<int>& locs, dbm::Dbm& z) const;

  /// Conjoins an edge guard onto z; returns false if empty.
  static bool constrain_guard(const Edge& e, dbm::Dbm& z);

  bool any_committed(const std::vector<int>& locs) const;
  bool any_urgent(const std::vector<int>& locs) const;
  /// True iff a synchronisation on an urgent channel is enabled (data level).
  bool urgent_sync_enabled(const std::vector<int>& locs,
                           const Valuation& vars) const;

  /// True iff delay is forbidden in the given discrete configuration.
  bool delay_forbidden(const std::vector<int>& locs,
                       const Valuation& vars) const;

  const std::vector<std::int32_t>& max_constants() const { return max_k_; }

  std::string state_to_string(const SymState& s) const;

 private:
  void apply_edge_effect(const Edge& e, Valuation& vars, dbm::Dbm& z) const;

  const System* sys_;
  Options opts_;
  std::vector<std::int32_t> max_k_;
  /// edges_from_[p][loc]: indices of process p's edges leaving location loc.
  std::vector<std::vector<std::vector<int>>> edges_from_;
  bool has_urgent_channel_ = false;
};

}  // namespace quanta::ta
