// Networks of timed automata in the style of UPPAAL: processes with
// locations (invariants, committed/urgent flags), edges (clock guards, data
// guards, channel synchronisation, resets, data updates), binary/broadcast
// channels, bounded integer variables and C-like update functions.
//
// Models are built programmatically through the builder methods on System /
// ProcessBuilder; the paper's models (Fig. 1 train-gate, BRP, timed game
// variants) are transcribed this way in src/models.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/expr.h"
#include "dbm/dbm.h"

namespace quanta::ta {

using common::DataGuard;
using common::DataUpdate;
using common::Valuation;
using common::Value;
using common::VarTable;

/// Atomic clock constraint x_i - x_j <= / < value over *global* clock ids
/// (0 is the constant reference clock).
struct ClockConstraint {
  int i = 0;
  int j = 0;
  dbm::raw_t bound = dbm::kInf;
};

/// x <= c
inline ClockConstraint cc_le(int clock, std::int32_t c) {
  return {clock, 0, dbm::bound_le(c)};
}
/// x < c
inline ClockConstraint cc_lt(int clock, std::int32_t c) {
  return {clock, 0, dbm::bound_lt(c)};
}
/// x >= c
inline ClockConstraint cc_ge(int clock, std::int32_t c) {
  return {0, clock, dbm::bound_le(-c)};
}
/// x > c
inline ClockConstraint cc_gt(int clock, std::int32_t c) {
  return {0, clock, dbm::bound_lt(-c)};
}
/// x - y <= c
inline ClockConstraint cc_diff_le(int x, int y, std::int32_t c) {
  return {x, y, dbm::bound_le(c)};
}

enum class SyncKind { kNone, kSend, kReceive };

/// Probabilistic alternative of an edge (PTA extension, MODEST `palt`): when
/// an edge carries branches, taking it resolves to one branch according to
/// the normalised weights, applying that branch's target/resets/update
/// instead of the edge's own.
struct ProbBranch {
  double weight = 1.0;
  int target = 0;
  std::vector<std::pair<int, Value>> resets;
  DataUpdate update;
  std::string label;
};

struct Edge {
  int source = 0;
  int target = 0;
  std::vector<ClockConstraint> guard;
  DataGuard data_guard;  ///< null means true
  /// Channel id; -1 for internal edges. If channel_fn is set it overrides
  /// the static id (used for channel arrays like appr[front()]).
  int channel = -1;
  std::function<int(const Valuation&)> channel_fn;
  SyncKind sync = SyncKind::kNone;
  std::vector<std::pair<int, Value>> resets;  ///< clock := value
  DataUpdate update;                          ///< null means identity
  /// Probabilistic branches; empty for ordinary (Dirac) edges.
  std::vector<ProbBranch> branches;
  /// For timed games (UPPAAL-TIGA): whether the controller owns this edge.
  bool controllable = true;
  std::string label;

  int channel_id(const Valuation& vars) const {
    return channel_fn ? channel_fn(vars) : channel;
  }
  bool probabilistic() const { return !branches.empty(); }
};

/// The effect of taking `e` resolved to branch `branch` (-1 for the edge's
/// own Dirac effect). Pointers refer into the edge; they stay valid as long
/// as the edge does.
struct EdgeEffect {
  int target = 0;
  const std::vector<std::pair<int, Value>>* resets = nullptr;
  const DataUpdate* update = nullptr;
};

EdgeEffect resolve_effect(const Edge& e, int branch);

struct Location {
  std::string name;
  std::vector<ClockConstraint> invariant;
  bool committed = false;
  bool urgent = false;
  /// SMC stochastic semantics: rate of the exponential delay distribution
  /// used when the location has no invariant upper bound on the next delay.
  double exit_rate = 1.0;
};

struct Process {
  std::string name;
  std::vector<Location> locations;
  std::vector<Edge> edges;
  int initial = 0;

  int location_index(const std::string& name) const;
};

struct Channel {
  std::string name;
  bool broadcast = false;
  bool urgent = false;
};

/// Fluent helper for assembling a Process.
class ProcessBuilder {
 public:
  explicit ProcessBuilder(std::string name) { p_.name = std::move(name); }

  /// Adds a location and returns its index.
  int location(std::string name, std::vector<ClockConstraint> invariant = {},
               bool committed = false, bool urgent = false,
               double exit_rate = 1.0);

  /// Starts a new edge between two locations; returns a reference that can be
  /// tweaked before the next call (stable because edges live in a deque-like
  /// usage pattern: we return by index through edge()).
  int edge(int source, int target);
  Edge& edge_ref(int index) { return p_.edges.at(index); }

  /// Convenience: fully-specified edge.
  int edge(int source, int target, std::vector<ClockConstraint> guard,
           int channel, SyncKind sync,
           std::vector<std::pair<int, Value>> resets,
           DataGuard data_guard = nullptr, DataUpdate update = nullptr,
           std::string label = {});

  void set_initial(int loc) { p_.initial = loc; }

  Process build() { return std::move(p_); }

 private:
  Process p_;
};

/// A network of timed automata with shared clocks, variables and channels.
class System {
 public:
  /// Declares a clock; returns its global id (>= 1; 0 is the reference).
  int add_clock(std::string name);
  /// Declares a channel; returns its id.
  int add_channel(std::string name, bool broadcast = false,
                  bool urgent = false);
  /// Declares `count` channels name[0..count-1]; returns the id of name[0].
  int add_channel_array(const std::string& name, int count,
                        bool broadcast = false, bool urgent = false);

  int add_process(Process p);

  VarTable& vars() { return vars_; }
  const VarTable& vars() const { return vars_; }

  int clock_count() const { return static_cast<int>(clock_names_.size()); }
  /// DBM dimension: clocks + reference clock.
  int dim() const { return clock_count() + 1; }
  const std::string& clock_name(int id) const { return clock_names_.at(id - 1); }

  int channel_count() const { return static_cast<int>(channels_.size()); }
  const Channel& channel(int id) const { return channels_.at(id); }

  int process_count() const { return static_cast<int>(processes_.size()); }
  const Process& process(int id) const { return processes_.at(id); }
  /// Mutable access for model-to-model transformations (mctau stripping,
  /// game construction); call validate() again after structural changes.
  Process& process_mut(int id) { return processes_.at(id); }
  int process_index(const std::string& name) const;

  /// Maximal constants per clock (index 0..dim-1, entry 0 is 0) for
  /// extrapolation; computed from all guards and invariants plus any hints.
  std::vector<std::int32_t> max_constants() const;

  /// Raises the maximal constant of a clock beyond what the constraints
  /// imply. Needed when a *property* compares the clock against a bound the
  /// model itself never mentions (e.g. the global clock of a time-bounded
  /// reachability query): the digital-clock cap must exceed that bound.
  void bump_max_constant(int clock, std::int32_t value);

  /// True iff any edge carries probabilistic branches (the model is a PTA
  /// rather than a plain TA).
  bool has_probabilistic() const;

  /// Validates structural well-formedness (edge indices in range, receive
  /// edges on declared channels, ...). Throws std::invalid_argument.
  void validate() const;

 private:
  std::vector<std::string> clock_names_;
  std::vector<Channel> channels_;
  std::vector<Process> processes_;
  std::vector<std::pair<int, std::int32_t>> max_const_hints_;
  VarTable vars_;
};

}  // namespace quanta::ta
