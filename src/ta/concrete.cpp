#include "ta/concrete.h"

#include <algorithm>
#include <cmath>

namespace quanta::ta {

namespace {

bool atom_satisfied(const ClockConstraint& c, const std::vector<double>& clocks) {
  if (c.bound >= dbm::kInf) return true;
  double diff = clocks[static_cast<std::size_t>(c.i)] -
                clocks[static_cast<std::size_t>(c.j)];
  double m = dbm::bound_value(c.bound);
  // Tolerate floating-point noise on non-strict bounds so that schedulers
  // acting exactly at a window boundary (ALAP) see the guard as satisfied.
  constexpr double kEps = 1e-9;
  return dbm::bound_is_strict(c.bound) ? diff < m : diff <= m + kEps;
}

}  // namespace

ConcreteState ConcreteSemantics::initial() const {
  const System& sys = system();
  ConcreteState s;
  s.locs.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    s.locs[p] = sys.process(p).initial;
  }
  s.vars = sys.vars().initial();
  s.clocks.assign(static_cast<std::size_t>(sys.dim()), 0.0);
  return s;
}

double ConcreteSemantics::invariant_max_delay(const ConcreteState& s,
                                              int process) const {
  const Location& loc =
      system().process(process).locations.at(s.locs[process]);
  double bound = kInfDelay;
  for (const auto& c : loc.invariant) {
    if (c.bound >= dbm::kInf) continue;
    // Only constraints with the reference clock as the right side tighten
    // under delay: (x_i - x_0 <= m) becomes x_i + d <= m.
    if (c.j == 0 && c.i != 0) {
      double slack = dbm::bound_value(c.bound) - s.clocks[c.i];
      bound = std::min(bound, std::max(0.0, slack));
    }
    // Diagonal constraints and lower bounds are delay-invariant or relax.
  }
  return bound;
}

double ConcreteSemantics::invariant_max_delay(const ConcreteState& s) const {
  double bound = kInfDelay;
  for (int p = 0; p < system().process_count(); ++p) {
    bound = std::min(bound, invariant_max_delay(s, p));
  }
  return bound;
}

bool ConcreteSemantics::invariant_satisfied(const ConcreteState& s) const {
  for (int p = 0; p < system().process_count(); ++p) {
    const Location& loc = system().process(p).locations.at(s.locs[p]);
    for (const auto& c : loc.invariant) {
      if (!atom_satisfied(c, s.clocks)) return false;
    }
  }
  return true;
}

bool ConcreteSemantics::guard_satisfied(const Edge& e,
                                        const ConcreteState& s) const {
  if (e.data_guard && !e.data_guard(s.vars)) return false;
  for (const auto& c : e.guard) {
    if (!atom_satisfied(c, s.clocks)) return false;
  }
  return true;
}

double ConcreteSemantics::min_enabling_delay(const Edge& e,
                                             const ConcreteState& s) const {
  double lo = 0.0;
  double hi = kInfDelay;
  for (const auto& c : e.guard) {
    if (c.bound >= dbm::kInf) continue;
    double m = dbm::bound_value(c.bound);
    if (c.i != 0 && c.j != 0) {
      // Diagonal: delay-invariant, must hold already.
      if (!atom_satisfied(c, s.clocks)) return kInfDelay;
    } else if (c.j == 0) {
      // x_i <= m: upper bound on delay.
      hi = std::min(hi, m - s.clocks[c.i]);
    } else {
      // -x_j <= m, i.e. x_j >= -m: lower bound on delay.
      lo = std::max(lo, -m - s.clocks[c.j]);
    }
  }
  if (lo > hi) return kInfDelay;
  return lo;
}

double ConcreteSemantics::max_enabling_delay(const Edge& e,
                                             const ConcreteState& s) const {
  double hi = kInfDelay;
  for (const auto& c : e.guard) {
    if (c.bound >= dbm::kInf) continue;
    if (c.j == 0 && c.i != 0) {
      hi = std::min(hi, static_cast<double>(dbm::bound_value(c.bound)) -
                            s.clocks[c.i]);
    }
  }
  return hi;
}

void ConcreteSemantics::delay(ConcreteState& s, double d) const {
  for (std::size_t i = 1; i < s.clocks.size(); ++i) s.clocks[i] += d;
}

void ConcreteSemantics::execute(ConcreteState& s, const Move& m,
                                std::span<const int> branch_choice) const {
  const System& sys = system();
  for (std::size_t k = 0; k < m.participants.size(); ++k) {
    const auto& [p, e] = m.participants[k];
    const Edge& edge = sys.process(p).edges.at(static_cast<std::size_t>(e));
    int branch = k < branch_choice.size() ? branch_choice[k] : -1;
    EdgeEffect eff = resolve_effect(edge, branch);
    s.locs[p] = eff.target;
    for (const auto& [clock, value] : *eff.resets) {
      s.clocks[static_cast<std::size_t>(clock)] = static_cast<double>(value);
    }
    if (*eff.update) {
      (*eff.update)(s.vars);
      sys.vars().check_bounds(s.vars);
    }
  }
}

std::vector<Move> ConcreteSemantics::enabled_moves_now(
    const ConcreteState& s) const {
  std::vector<Move> result;
  for (Move& m : sym_.enabled_moves(s.locs, s.vars)) {
    bool ok = true;
    for (const auto& [p, e] : m.participants) {
      const Edge& edge =
          system().process(p).edges.at(static_cast<std::size_t>(e));
      for (const auto& c : edge.guard) {
        if (!atom_satisfied(c, s.clocks)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) result.push_back(std::move(m));
  }
  return result;
}

}  // namespace quanta::ta
