#include "ta/symbolic.h"

#include <sstream>
#include <stdexcept>

#include "common/hash.h"

namespace quanta::ta {

std::size_t SymState::discrete_hash() const {
  std::size_t seed = common::hash_vector(locs);
  common::hash_combine(seed, common::hash_vector(vars));
  return seed;
}

std::string Move::describe(const System& sys) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    auto [p, e] = participants[i];
    const Process& proc = sys.process(p);
    const Edge& edge = proc.edges.at(static_cast<std::size_t>(e));
    if (i > 0) os << " + ";
    os << proc.name << ":" << proc.locations[edge.source].name << "->"
       << proc.locations[edge.target].name;
    if (!edge.label.empty()) os << " [" << edge.label << "]";
  }
  return os.str();
}

SymbolicSemantics::SymbolicSemantics(const System& sys, Options opts)
    : sys_(&sys), opts_(opts), max_k_(sys.max_constants()) {
  sys.validate();
  for (int c = 0; c < sys.channel_count(); ++c) {
    if (sys.channel(c).urgent) has_urgent_channel_ = true;
  }
  edges_from_.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    const Process& proc = sys.process(p);
    edges_from_[p].resize(proc.locations.size());
    for (std::size_t e = 0; e < proc.edges.size(); ++e) {
      edges_from_[p][static_cast<std::size_t>(proc.edges[e].source)].push_back(
          static_cast<int>(e));
    }
  }
}

bool SymbolicSemantics::constrain_invariant(const std::vector<int>& locs,
                                            dbm::Dbm& z) const {
  for (int p = 0; p < sys_->process_count(); ++p) {
    const Location& loc = sys_->process(p).locations.at(locs[p]);
    for (const auto& c : loc.invariant) {
      if (!z.constrain(c.i, c.j, c.bound)) return false;
    }
  }
  return true;
}

bool SymbolicSemantics::constrain_guard(const Edge& e, dbm::Dbm& z) {
  for (const auto& c : e.guard) {
    if (!z.constrain(c.i, c.j, c.bound)) return false;
  }
  return true;
}

bool SymbolicSemantics::any_committed(const std::vector<int>& locs) const {
  for (int p = 0; p < sys_->process_count(); ++p) {
    if (sys_->process(p).locations.at(locs[p]).committed) return true;
  }
  return false;
}

bool SymbolicSemantics::any_urgent(const std::vector<int>& locs) const {
  for (int p = 0; p < sys_->process_count(); ++p) {
    if (sys_->process(p).locations.at(locs[p]).urgent) return true;
  }
  return false;
}

bool SymbolicSemantics::urgent_sync_enabled(const std::vector<int>& locs,
                                            const Valuation& vars) const {
  if (!has_urgent_channel_) return false;
  // UPPAAL restriction (validated in models): edges on urgent channels carry
  // no clock guards, so enabledness is decidable at the data level.
  for (const Move& m : enabled_moves(locs, vars)) {
    auto [p, e] = m.participants.front();
    const Edge& edge = sys_->process(p).edges.at(static_cast<std::size_t>(e));
    if (edge.sync == SyncKind::kSend || edge.sync == SyncKind::kReceive) {
      int ch = edge.channel_id(vars);
      if (ch >= 0 && sys_->channel(ch).urgent) return true;
    }
  }
  return false;
}

bool SymbolicSemantics::delay_forbidden(const std::vector<int>& locs,
                                        const Valuation& vars) const {
  return any_committed(locs) || any_urgent(locs) ||
         urgent_sync_enabled(locs, vars);
}

SymState SymbolicSemantics::initial() const {
  SymState s;
  s.locs.resize(static_cast<std::size_t>(sys_->process_count()));
  for (int p = 0; p < sys_->process_count(); ++p) {
    s.locs[p] = sys_->process(p).initial;
  }
  s.vars = sys_->vars().initial();
  s.zone = dbm::Dbm::zero(sys_->dim());
  if (!constrain_invariant(s.locs, s.zone)) {
    throw std::logic_error("initial state violates invariants");
  }
  if (!delay_forbidden(s.locs, s.vars)) {
    s.zone.up();
    constrain_invariant(s.locs, s.zone);
  }
  if (opts_.extrapolate) s.zone.extrapolate_max_bounds(max_k_);
  return s;
}

std::vector<Move> SymbolicSemantics::enabled_moves(const std::vector<int>& locs,
                                                   const Valuation& vars) const {
  std::vector<Move> moves;
  const bool committed_mode = any_committed(locs);

  auto data_ok = [&vars](const Edge& e) {
    return !e.data_guard || e.data_guard(vars);
  };
  auto proc_committed = [this, &locs](int p) {
    return sys_->process(p).locations.at(locs[p]).committed;
  };

  // Internal edges.
  for (int p = 0; p < sys_->process_count(); ++p) {
    const Process& proc = sys_->process(p);
    for (int e : edges_from_[p][static_cast<std::size_t>(locs[p])]) {
      const Edge& edge = proc.edges[static_cast<std::size_t>(e)];
      if (edge.sync != SyncKind::kNone) continue;
      if (!data_ok(edge)) continue;
      if (committed_mode && !proc_committed(p)) continue;
      moves.push_back(Move{{{p, e}}});
    }
  }

  // Synchronisations: enumerate senders, then match receivers.
  for (int p = 0; p < sys_->process_count(); ++p) {
    const Process& proc = sys_->process(p);
    for (int e : edges_from_[p][static_cast<std::size_t>(locs[p])]) {
      const Edge& edge = proc.edges[static_cast<std::size_t>(e)];
      if (edge.sync != SyncKind::kSend) continue;
      if (!data_ok(edge)) continue;
      int ch = edge.channel_id(vars);
      if (ch < 0 || ch >= sys_->channel_count()) continue;
      const bool broadcast = sys_->channel(ch).broadcast;

      if (!broadcast) {
        for (int q = 0; q < sys_->process_count(); ++q) {
          if (q == p) continue;
          const Process& qproc = sys_->process(q);
          for (int f : edges_from_[q][static_cast<std::size_t>(locs[q])]) {
            const Edge& redge = qproc.edges[static_cast<std::size_t>(f)];
            if (redge.sync != SyncKind::kReceive) continue;
            if (redge.channel_id(vars) != ch) continue;
            if (!data_ok(redge)) continue;
            if (committed_mode && !proc_committed(p) && !proc_committed(q)) continue;
            moves.push_back(Move{{{p, e}, {q, f}}});
          }
        }
      } else {
        // Broadcast: every process with an enabled receive edge participates.
        // Receivers on broadcast channels must not carry clock guards (so
        // participation is decidable at the data level); at most one enabled
        // receive edge per process is supported.
        Move m{{{p, e}}};
        bool receiver_committed = false;
        for (int q = 0; q < sys_->process_count(); ++q) {
          if (q == p) continue;
          const Process& qproc = sys_->process(q);
          int chosen = -1;
          for (int f : edges_from_[q][static_cast<std::size_t>(locs[q])]) {
            const Edge& redge = qproc.edges[static_cast<std::size_t>(f)];
            if (redge.sync != SyncKind::kReceive) continue;
            if (redge.channel_id(vars) != ch) continue;
            if (!data_ok(redge)) continue;
            if (!redge.guard.empty()) {
              throw std::logic_error(
                  "broadcast receiver edges must not have clock guards");
            }
            chosen = f;
            break;
          }
          if (chosen >= 0) {
            m.participants.emplace_back(q, chosen);
            if (proc_committed(q)) receiver_committed = true;
          }
        }
        if (committed_mode && !proc_committed(p) && !receiver_committed) continue;
        moves.push_back(std::move(m));
      }
    }
  }
  return moves;
}

void SymbolicSemantics::apply_edge_effect(const Edge& e, Valuation& vars,
                                          dbm::Dbm& z) const {
  if (e.probabilistic()) {
    throw std::logic_error(
        "SymbolicSemantics: model has probabilistic branches; analyse the "
        "mctau overapproximation (sta::strip_probabilities) instead");
  }
  for (const auto& [clock, value] : e.resets) z.reset(clock, value);
  if (e.update) {
    e.update(vars);
    sys_->vars().check_bounds(vars);
  }
}

std::optional<SymState> SymbolicSemantics::apply_move(const SymState& s,
                                                      const Move& m) const {
  SymState next = s;
  // Guards are evaluated against the pre-state zone.
  for (const auto& [p, e] : m.participants) {
    const Edge& edge = sys_->process(p).edges.at(static_cast<std::size_t>(e));
    if (!constrain_guard(edge, next.zone)) return std::nullopt;
  }
  // Effects: sender/internal first, then receivers, in participant order.
  for (const auto& [p, e] : m.participants) {
    const Edge& edge = sys_->process(p).edges.at(static_cast<std::size_t>(e));
    next.locs[p] = edge.target;
    apply_edge_effect(edge, next.vars, next.zone);
  }
  if (!constrain_invariant(next.locs, next.zone)) return std::nullopt;
  if (!delay_forbidden(next.locs, next.vars)) {
    next.zone.up();
    if (!constrain_invariant(next.locs, next.zone)) return std::nullopt;
  }
  if (opts_.extrapolate) next.zone.extrapolate_max_bounds(max_k_);
  if (next.zone.is_empty()) return std::nullopt;
  return next;
}

std::vector<SymTransition> SymbolicSemantics::successors(const SymState& s) const {
  std::vector<SymTransition> result;
  for (const Move& m : enabled_moves(s.locs, s.vars)) {
    if (auto next = apply_move(s, m)) {
      result.push_back(SymTransition{m, std::move(*next)});
    }
  }
  return result;
}

std::string SymbolicSemantics::state_to_string(const SymState& s) const {
  std::ostringstream os;
  os << "(";
  for (int p = 0; p < sys_->process_count(); ++p) {
    if (p > 0) os << ", ";
    os << sys_->process(p).name << "."
       << sys_->process(p).locations.at(s.locs[p]).name;
  }
  os << ")";
  if (!s.vars.empty()) {
    os << " {";
    for (std::size_t i = 0; i < s.vars.size(); ++i) {
      if (i > 0) os << ", ";
      os << sys_->vars().decl(static_cast<int>(i)).name << "=" << s.vars[i];
    }
    os << "}";
  }
  os << " " << s.zone.to_string();
  return os.str();
}

}  // namespace quanta::ta
