// Model exporters: Graphviz DOT for documentation/debugging and an
// UPPAAL-XML-shaped export mirroring mctau's bridge to the UPPAAL GUI
// (§III: "export to UPPAAL XML, including automatic layout"). Data guards
// and updates are opaque callables, so they are exported as opaque labels;
// clock constraints, synchronisations and structure are exported faithfully.
#pragma once

#include <string>

#include "ta/model.h"

namespace quanta::ta {

/// One DOT digraph per process, concatenated (clusters).
std::string to_dot(const System& sys);

/// UPPAAL 4.x XML document (templates, locations with invariants, edges with
/// guards/syncs/resets, system instantiation) with a simple grid layout.
std::string to_uppaal_xml(const System& sys);

}  // namespace quanta::ta
