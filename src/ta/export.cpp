#include "ta/export.h"

#include <sstream>

namespace quanta::ta {

namespace {

std::string constraint_str(const System& sys, const ClockConstraint& c) {
  auto name = [&sys](int clock) {
    return clock == 0 ? std::string("0") : sys.clock_name(clock);
  };
  std::ostringstream os;
  if (c.j == 0) {
    os << name(c.i);
  } else if (c.i == 0) {
    // 0 - x_j <= m  <=>  x_j >= -m
    os << name(c.j) << (dbm::bound_is_strict(c.bound) ? " > " : " >= ")
       << -dbm::bound_value(c.bound);
    return os.str();
  } else {
    os << name(c.i) << " - " << name(c.j);
  }
  os << (dbm::bound_is_strict(c.bound) ? " < " : " <= ")
     << dbm::bound_value(c.bound);
  return os.str();
}

std::string conjunction_str(const System& sys,
                            const std::vector<ClockConstraint>& ccs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ccs.size(); ++i) {
    if (i) os << " && ";
    os << constraint_str(sys, ccs[i]);
  }
  return os.str();
}

std::string sync_str(const System& sys, const Edge& e) {
  if (e.sync == SyncKind::kNone) return {};
  std::string ch = e.channel_fn
                       ? "<dynamic>"
                       : (e.channel >= 0 ? sys.channel(e.channel).name : "?");
  return ch + (e.sync == SyncKind::kSend ? "!" : "?");
}

std::string reset_str(const System& sys, const Edge& e) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [clock, value] : e.resets) {
    if (!first) os << ", ";
    os << sys.clock_name(clock) << " := " << value;
    first = false;
  }
  if (e.update) {
    if (!first) os << ", ";
    os << "<update>";
  }
  return os.str();
}

std::string xml_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_dot(const System& sys) {
  std::ostringstream os;
  os << "digraph system {\n  rankdir=LR;\n";
  for (int p = 0; p < sys.process_count(); ++p) {
    const Process& proc = sys.process(p);
    os << "  subgraph cluster_" << p << " {\n";
    os << "    label=\"" << proc.name << "\";\n";
    for (std::size_t l = 0; l < proc.locations.size(); ++l) {
      const Location& loc = proc.locations[l];
      os << "    p" << p << "_" << l << " [label=\"" << loc.name;
      if (!loc.invariant.empty()) {
        os << "\\n" << conjunction_str(sys, loc.invariant);
      }
      os << "\"";
      if (static_cast<int>(l) == proc.initial) os << ", peripheries=2";
      if (loc.committed) os << ", style=filled, fillcolor=lightpink";
      if (loc.urgent) os << ", style=filled, fillcolor=lightyellow";
      os << "];\n";
    }
    for (const Edge& e : proc.edges) {
      os << "    p" << p << "_" << e.source << " -> p" << p << "_";
      if (e.probabilistic()) {
        // Show a fan-out through an intermediate point per branch.
        os << e.branches.front().target;
      } else {
        os << e.target;
      }
      std::string label;
      std::string g = conjunction_str(sys, e.guard);
      std::string s = sync_str(sys, e);
      std::string r = reset_str(sys, e);
      if (!g.empty()) label += g;
      if (!s.empty()) label += (label.empty() ? "" : "\\n") + s;
      if (!r.empty()) label += (label.empty() ? "" : "\\n") + r;
      if (e.probabilistic()) label += "\\n<prob>";
      os << " [label=\"" << label << "\"";
      if (!e.controllable) os << ", style=dashed";
      os << "];\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_uppaal_xml(const System& sys) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  os << "<nta>\n  <declaration>";
  for (int c = 1; c <= sys.clock_count(); ++c) {
    os << "clock " << sys.clock_name(c) << "; ";
  }
  for (int c = 0; c < sys.channel_count(); ++c) {
    const Channel& ch = sys.channel(c);
    if (ch.broadcast) os << "broadcast ";
    if (ch.urgent) os << "urgent ";
    os << "chan " << ch.name << "; ";
  }
  for (const auto& d : sys.vars().decls()) {
    os << "int[" << d.min << "," << d.max << "] " << d.name << " = " << d.init
       << "; ";
  }
  os << "</declaration>\n";

  for (int p = 0; p < sys.process_count(); ++p) {
    const Process& proc = sys.process(p);
    os << "  <template>\n    <name>" << xml_escape(proc.name) << "</name>\n";
    for (std::size_t l = 0; l < proc.locations.size(); ++l) {
      const Location& loc = proc.locations[l];
      // Simple grid layout (the "automatic layout" role of mctau).
      int x = static_cast<int>(l % 4) * 200;
      int y = static_cast<int>(l / 4) * 150;
      os << "    <location id=\"id" << p << "_" << l << "\" x=\"" << x
         << "\" y=\"" << y << "\">\n";
      os << "      <name>" << xml_escape(loc.name) << "</name>\n";
      if (!loc.invariant.empty()) {
        os << "      <label kind=\"invariant\">"
           << xml_escape(conjunction_str(sys, loc.invariant)) << "</label>\n";
      }
      if (loc.committed) os << "      <committed/>\n";
      if (loc.urgent) os << "      <urgent/>\n";
      os << "    </location>\n";
    }
    os << "    <init ref=\"id" << p << "_" << proc.initial << "\"/>\n";
    for (const Edge& e : proc.edges) {
      os << "    <transition>\n";
      os << "      <source ref=\"id" << p << "_" << e.source << "\"/>\n";
      os << "      <target ref=\"id" << p << "_" << e.target << "\"/>\n";
      if (!e.guard.empty()) {
        os << "      <label kind=\"guard\">"
           << xml_escape(conjunction_str(sys, e.guard)) << "</label>\n";
      }
      std::string s = sync_str(sys, e);
      if (!s.empty()) {
        os << "      <label kind=\"synchronisation\">" << xml_escape(s)
           << "</label>\n";
      }
      std::string r = reset_str(sys, e);
      if (!r.empty()) {
        os << "      <label kind=\"assignment\">" << xml_escape(r)
           << "</label>\n";
      }
      if (e.probabilistic()) {
        os << "      <!-- probabilistic edge overapproximated: "
           << e.branches.size() << " branches -->\n";
      }
      os << "    </transition>\n";
    }
    os << "  </template>\n";
  }
  os << "  <system>system ";
  for (int p = 0; p < sys.process_count(); ++p) {
    os << (p ? ", " : "") << sys.process(p).name;
  }
  os << ";</system>\n</nta>\n";
  return os.str();
}

}  // namespace quanta::ta
