// core::StateTraits specializations for the timed-automata state types,
// plugging both semantics into the shared exploration core:
//   * ta::SymState  — zone states; partitioned by the discrete part with
//     DBM set-inclusion subsumption, so UPPAAL-style covered-state
//     tombstoning is available to every zone-based engine;
//   * ta::DigitalState — integer-time states; exact interning.
#pragma once

#include "common/hash.h"
#include "core/traits.h"
#include "ta/digital.h"
#include "ta/symbolic.h"

namespace quanta::core {

template <>
struct StateTraits<ta::SymState> {
  static constexpr bool kSupportsInclusion = true;

  static std::size_t hash(const ta::SymState& s) {
    std::size_t seed = s.discrete_hash();
    common::hash_combine(seed, s.zone.hash());
    return seed;
  }
  static bool equal(const ta::SymState& a, const ta::SymState& b) {
    return a.same_discrete(b) && a.zone == b.zone;
  }

  static std::size_t partition_hash(const ta::SymState& s) {
    return s.discrete_hash();
  }
  static bool same_partition(const ta::SymState& a, const ta::SymState& b) {
    return a.same_discrete(b);
  }
  static Subsumes compare(const ta::SymState& stored,
                          const ta::SymState& incoming) {
    switch (incoming.zone.relation(stored.zone)) {
      case dbm::Relation::kEqual:
      case dbm::Relation::kSubset:
        return Subsumes::kStored;
      case dbm::Relation::kSuperset:
        return Subsumes::kIncoming;
      case dbm::Relation::kDifferent:
        break;
    }
    return Subsumes::kNone;
  }

  /// Heap bytes behind one zone state (discrete vectors + DBM matrix) — the
  /// per-state contribution to StateStore byte accounting (common::Budget).
  static std::size_t memory_bytes(const ta::SymState& s) {
    const std::size_t dim = static_cast<std::size_t>(s.zone.dim());
    return s.locs.capacity() * sizeof(int) +
           s.vars.capacity() * sizeof(decltype(s.vars)::value_type) +
           dim * dim * sizeof(dbm::raw_t);
  }
};

template <>
struct StateTraits<ta::DigitalState> {
  static constexpr bool kSupportsInclusion = false;

  static std::size_t hash(const ta::DigitalState& s) { return s.hash(); }
  static bool equal(const ta::DigitalState& a, const ta::DigitalState& b) {
    return a == b;
  }

  static std::size_t memory_bytes(const ta::DigitalState& s) {
    return s.locs.capacity() * sizeof(int) +
           s.vars.capacity() * sizeof(decltype(s.vars)::value_type) +
           s.clocks.capacity() * sizeof(std::int32_t);
  }
};

}  // namespace quanta::core
