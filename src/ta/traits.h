// core::StateTraits specializations for the timed-automata state types,
// plugging both semantics into the shared exploration core:
//   * ta::SymState  — zone states; partitioned by the discrete part with
//     DBM set-inclusion subsumption, so UPPAAL-style covered-state
//     tombstoning is available to every zone-based engine;
//   * ta::DigitalState — integer-time states; exact interning.
//
// Both opt into pooled storage (core::PooledTraits): states in a StateStore
// are kept as tuples of store::Ref handles into a ZonePool, so the same
// location vector, valuation, clock vector or DBM row is stored once no
// matter how many states share it (zones are interned row-wise — whole
// matrices rarely repeat, their rows do). Comparisons against stored states
// go through pool spans and decide exactly like the unpooled overloads,
// keeping exploration order bit-identical.
#pragma once

#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "core/traits.h"
#include "store/pack.h"
#include "ta/digital.h"
#include "ta/symbolic.h"

namespace quanta::core {

template <>
struct StateTraits<ta::SymState> {
  static constexpr bool kSupportsInclusion = true;

  static std::size_t hash(const ta::SymState& s) {
    std::size_t seed = s.discrete_hash();
    common::hash_combine(seed, s.zone.hash());
    return seed;
  }
  static bool equal(const ta::SymState& a, const ta::SymState& b) {
    return a.same_discrete(b) && a.zone == b.zone;
  }

  static std::size_t partition_hash(const ta::SymState& s) {
    return s.discrete_hash();
  }
  static bool same_partition(const ta::SymState& a, const ta::SymState& b) {
    return a.same_discrete(b);
  }
  static Subsumes compare(const ta::SymState& stored,
                          const ta::SymState& incoming) {
    return relation_to_subsumes(incoming.zone.relation(stored.zone));
  }

  /// Heap bytes behind one zone state (discrete vectors + DBM matrix) — the
  /// per-state contribution to StateStore byte accounting (common::Budget).
  static std::size_t memory_bytes(const ta::SymState& s) {
    const std::size_t dim = static_cast<std::size_t>(s.zone.dim());
    return s.locs.capacity() * sizeof(int) +
           s.vars.capacity() * sizeof(decltype(s.vars)::value_type) +
           dim * dim * sizeof(dbm::raw_t);
  }

  // --- pooled storage ---
  //
  // The zone matrix is interned ROW by row, not as one record: whole zones
  // across a zone graph are almost all distinct, but their rows repeat
  // heavily (a discrete step or an extrapolation typically rewrites the
  // bounds of one or two clocks and leaves the other rows untouched), so
  // row granularity is where the structural sharing actually is. A state
  // keeps its dim row refs inline while dim <= kInlineRows; larger systems
  // fall back to one pooled vector of row refs in rows[0].

  static constexpr int kInlineRows = 8;

  struct Pooled {
    store::Ref locs;
    store::Ref vars;
    std::int32_t dim;
    std::array<store::Ref, kInlineRows> rows;
  };

  static Pooled pool(store::ZonePool& p, const ta::SymState& s) {
    Pooled out;
    out.locs = store::intern_vec(p, s.locs);
    out.vars = store::intern_vec(p, s.vars);
    out.dim = s.zone.dim();
    out.rows.fill(store::kNullRef);
    const auto dim = static_cast<std::size_t>(out.dim);
    const dbm::raw_t* raw = s.zone.raw_data();
    if (out.dim <= kInlineRows) {
      for (std::size_t r = 0; r < dim; ++r) {
        out.rows[r] = p.intern({raw + r * dim, dim});
      }
    } else {
      std::vector<store::Ref> refs(dim);
      for (std::size_t r = 0; r < dim; ++r) {
        refs[r] = p.intern({raw + r * dim, dim});
      }
      out.rows[0] = store::intern_vec(p, refs);
    }
    return out;
  }
  static ta::SymState unpool(const store::ZonePool& p, const Pooled& st) {
    ta::SymState s;
    store::unpack_vec(p, st.locs, s.locs);
    store::unpack_vec(p, st.vars, s.vars);
    const auto dim = static_cast<std::size_t>(st.dim);
    dbm::raw_t inline_buf[kInlineRows * kInlineRows];
    std::vector<dbm::raw_t> heap_buf;
    dbm::raw_t* buf = inline_buf;
    if (st.dim > kInlineRows) {
      heap_buf.resize(dim * dim);
      buf = heap_buf.data();
    }
    for (std::size_t r = 0; r < dim; ++r) {
      std::memcpy(buf + r * dim, p.data(row_ref(p, st, r)).data(),
                  dim * sizeof(dbm::raw_t));
    }
    s.zone = dbm::Dbm::from_raw(st.dim, buf);
    return s;
  }
  static bool equal(const store::ZonePool& p, const Pooled& st,
                    const ta::SymState& s) {
    if (!same_partition(p, st, s) || st.dim != s.zone.dim()) return false;
    const auto dim = static_cast<std::size_t>(st.dim);
    const dbm::raw_t* raw = s.zone.raw_data();
    for (std::size_t r = 0; r < dim; ++r) {
      if (std::memcmp(p.data(row_ref(p, st, r)).data(), raw + r * dim,
                      dim * sizeof(dbm::raw_t)) != 0) {
        return false;
      }
    }
    return true;
  }
  static bool same_partition(const store::ZonePool& p, const Pooled& st,
                             const ta::SymState& s) {
    return store::vec_equals(p, st.locs, s.locs) &&
           store::vec_equals(p, st.vars, s.vars);
  }
  static Subsumes compare(const store::ZonePool& p, const Pooled& st,
                          const ta::SymState& incoming) {
    return relation_to_subsumes(rows_relation(p, st, incoming.zone));
  }

 private:
  /// The ref of zone row r, wherever it lives (inline or the rows[0] blob).
  static store::Ref row_ref(const store::ZonePool& p, const Pooled& st,
                            std::size_t r) {
    if (st.dim <= kInlineRows) return st.rows[r];
    return static_cast<store::Ref>(
        static_cast<std::uint32_t>(p.data(st.rows[0])[r]));
  }
  /// incoming.relation(stored zone), computed against the interned rows
  /// without materializing the matrix. Same empty-zone checks, le/ge
  /// accumulation and early exit as dbm relation — decisions are
  /// bit-identical to the unpooled comparison.
  static dbm::Relation rows_relation(const store::ZonePool& p,
                                     const Pooled& st,
                                     const dbm::Dbm& incoming) {
    assert(incoming.dim() == st.dim);
    const auto dim = static_cast<std::size_t>(st.dim);
    const dbm::raw_t* a = incoming.raw_data();
    const bool a_empty = a[0] < dbm::kLeZero;
    const bool b_empty = p.data(row_ref(p, st, 0))[0] < dbm::kLeZero;
    if (a_empty && b_empty) return dbm::Relation::kEqual;
    if (a_empty) return dbm::Relation::kSubset;
    if (b_empty) return dbm::Relation::kSuperset;
    bool le = true, ge = true;
    for (std::size_t r = 0; r < dim; ++r) {
      const std::int32_t* b = p.data(row_ref(p, st, r)).data();
      const dbm::raw_t* ar = a + r * dim;
      for (std::size_t j = 0; j < dim; ++j) {
        if (ar[j] > b[j]) le = false;
        if (ar[j] < b[j]) ge = false;
        if (!le && !ge) return dbm::Relation::kDifferent;
      }
    }
    if (le && ge) return dbm::Relation::kEqual;
    return le ? dbm::Relation::kSubset : dbm::Relation::kSuperset;
  }
  static Subsumes relation_to_subsumes(dbm::Relation r) {
    switch (r) {
      case dbm::Relation::kEqual:
      case dbm::Relation::kSubset:
        return Subsumes::kStored;
      case dbm::Relation::kSuperset:
        return Subsumes::kIncoming;
      case dbm::Relation::kDifferent:
        break;
    }
    return Subsumes::kNone;
  }
};

template <>
struct StateTraits<ta::DigitalState> {
  static constexpr bool kSupportsInclusion = false;

  static std::size_t hash(const ta::DigitalState& s) { return s.hash(); }
  static bool equal(const ta::DigitalState& a, const ta::DigitalState& b) {
    return a == b;
  }

  static std::size_t memory_bytes(const ta::DigitalState& s) {
    return s.locs.capacity() * sizeof(int) +
           s.vars.capacity() * sizeof(decltype(s.vars)::value_type) +
           s.clocks.capacity() * sizeof(std::int32_t);
  }

  // --- pooled storage ---

  struct Pooled {
    store::Ref locs;
    store::Ref vars;
    store::Ref clocks;
  };

  static Pooled pool(store::ZonePool& p, const ta::DigitalState& s) {
    Pooled out;
    out.locs = store::intern_vec(p, s.locs);
    out.vars = store::intern_vec(p, s.vars);
    out.clocks = store::intern_vec(p, s.clocks);
    return out;
  }
  static ta::DigitalState unpool(const store::ZonePool& p, const Pooled& st) {
    ta::DigitalState s;
    store::unpack_vec(p, st.locs, s.locs);
    store::unpack_vec(p, st.vars, s.vars);
    store::unpack_vec(p, st.clocks, s.clocks);
    return s;
  }
  static bool equal(const store::ZonePool& p, const Pooled& st,
                    const ta::DigitalState& s) {
    return store::vec_equals(p, st.locs, s.locs) &&
           store::vec_equals(p, st.vars, s.vars) &&
           store::vec_equals(p, st.clocks, s.clocks);
  }
};

}  // namespace quanta::core
