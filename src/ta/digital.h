// Digital-clocks (integer time) semantics of a network of timed automata.
// Clocks advance in unit steps and are capped at their maximal constant + 1,
// giving a finite transition system. Exact for closed, diagonal-free models
// (Henzinger/Manna/Pnueli), which is what the paper's game and priced
// examples use; see DESIGN.md §4 for the substitution rationale.
//
// Used by the timed-game solver (UPPAAL-TIGA reproduction), the priced
// reachability engine (UPPAAL-CORA) and the ECDAR refinement checker.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ta/model.h"
#include "ta/symbolic.h"

namespace quanta::ta {

struct DigitalState {
  std::vector<int> locs;
  Valuation vars;
  /// Integer clock values, capped; clocks[0] stays 0.
  std::vector<std::int32_t> clocks;

  auto operator<=>(const DigitalState&) const = default;
  std::size_t hash() const;
};

struct DigitalStateHash {
  std::size_t operator()(const DigitalState& s) const { return s.hash(); }
};

class DigitalSemantics {
 public:
  /// Throws std::invalid_argument if the model has diagonal constraints
  /// (digital clocks would be unsound for those).
  explicit DigitalSemantics(const System& sys);

  const System& system() const { return sym_.system(); }

  DigitalState initial() const;

  /// True iff a unit delay is allowed (invariants still hold afterwards and
  /// no committed/urgent context forbids delay).
  bool can_delay(const DigitalState& s) const;

  /// Unit delay with per-clock capping. Requires can_delay().
  DigitalState delay_one(const DigitalState& s) const;

  /// Discrete moves enabled right now (data + clock guards + committed).
  std::vector<Move> enabled_moves(const DigitalState& s) const;

  /// Applies a move; `branch_choice[k]` picks participant k's probabilistic
  /// branch (-1 / missing means Dirac).
  DigitalState apply(const DigitalState& s, const Move& m,
                     std::span<const int> branch_choice = {}) const;

  bool invariant_ok(const DigitalState& s) const;

  /// Evaluates a single clock constraint at the state.
  bool constraint_ok(const ClockConstraint& c, const DigitalState& s) const;

  const SymbolicSemantics& symbolic() const { return sym_; }
  std::int32_t cap(int clock) const { return caps_.at(static_cast<std::size_t>(clock)); }

 private:
  SymbolicSemantics sym_;
  std::vector<std::int32_t> caps_;  ///< max constant + 1 per clock
};

}  // namespace quanta::ta
