#include "ta/digital.h"

#include <stdexcept>

#include "common/hash.h"

namespace quanta::ta {

std::size_t DigitalState::hash() const {
  std::size_t seed = common::hash_vector(locs);
  common::hash_combine(seed, common::hash_vector(vars));
  common::hash_combine(seed, common::hash_vector(clocks));
  return seed;
}

DigitalSemantics::DigitalSemantics(const System& sys) : sym_(sys) {
  auto check_diag_free = [](const std::vector<ClockConstraint>& ccs) {
    for (const auto& c : ccs) {
      if (c.i != 0 && c.j != 0) {
        throw std::invalid_argument(
            "DigitalSemantics requires diagonal-free models");
      }
    }
  };
  for (int p = 0; p < sys.process_count(); ++p) {
    for (const auto& l : sys.process(p).locations) check_diag_free(l.invariant);
    for (const auto& e : sys.process(p).edges) check_diag_free(e.guard);
  }
  caps_ = sys.max_constants();
  for (auto& c : caps_) c += 1;
  caps_[0] = 0;
}

DigitalState DigitalSemantics::initial() const {
  const System& sys = system();
  DigitalState s;
  s.locs.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    s.locs[p] = sys.process(p).initial;
  }
  s.vars = sys.vars().initial();
  s.clocks.assign(static_cast<std::size_t>(sys.dim()), 0);
  return s;
}

bool DigitalSemantics::constraint_ok(const ClockConstraint& c,
                                     const DigitalState& s) const {
  if (c.bound >= dbm::kInf) return true;
  std::int64_t diff = static_cast<std::int64_t>(s.clocks[c.i]) - s.clocks[c.j];
  std::int64_t m = dbm::bound_value(c.bound);
  return dbm::bound_is_strict(c.bound) ? diff < m : diff <= m;
}

bool DigitalSemantics::invariant_ok(const DigitalState& s) const {
  for (int p = 0; p < system().process_count(); ++p) {
    const Location& loc = system().process(p).locations.at(s.locs[p]);
    for (const auto& c : loc.invariant) {
      if (!constraint_ok(c, s)) return false;
    }
  }
  return true;
}

bool DigitalSemantics::can_delay(const DigitalState& s) const {
  if (sym_.delay_forbidden(s.locs, s.vars)) return false;
  DigitalState next = delay_one(s);
  return invariant_ok(next);
}

DigitalState DigitalSemantics::delay_one(const DigitalState& s) const {
  DigitalState next = s;
  for (std::size_t i = 1; i < next.clocks.size(); ++i) {
    if (next.clocks[i] < caps_[i]) next.clocks[i] += 1;
  }
  return next;
}

std::vector<Move> DigitalSemantics::enabled_moves(const DigitalState& s) const {
  std::vector<Move> result;
  for (Move& m : sym_.enabled_moves(s.locs, s.vars)) {
    bool ok = true;
    for (const auto& [p, e] : m.participants) {
      const Edge& edge =
          system().process(p).edges.at(static_cast<std::size_t>(e));
      for (const auto& c : edge.guard) {
        if (!constraint_ok(c, s)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) result.push_back(std::move(m));
  }
  return result;
}

DigitalState DigitalSemantics::apply(const DigitalState& s, const Move& m,
                                     std::span<const int> branch_choice) const {
  const System& sys = system();
  DigitalState next = s;
  for (std::size_t k = 0; k < m.participants.size(); ++k) {
    const auto& [p, e] = m.participants[k];
    const Edge& edge = sys.process(p).edges.at(static_cast<std::size_t>(e));
    int branch = k < branch_choice.size() ? branch_choice[k] : -1;
    EdgeEffect eff = resolve_effect(edge, branch);
    next.locs[p] = eff.target;
    for (const auto& [clock, value] : *eff.resets) {
      next.clocks[static_cast<std::size_t>(clock)] = value;
    }
    if (*eff.update) {
      (*eff.update)(next.vars);
      sys.vars().check_bounds(next.vars);
    }
  }
  return next;
}

}  // namespace quanta::ta
