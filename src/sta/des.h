// modes-style discrete-event simulation (§III): simulates (P)TA/STA models
// concretely, resolving *nondeterminism* — which delay to take inside a
// legal window, which enabled move to fire — with an explicitly specified
// scheduler policy, as the paper notes modes requires. Probabilistic
// branches are always sampled by weight.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "ta/concrete.h"

namespace quanta::sta {

enum class SchedulerPolicy {
  kAsap,           ///< act as soon as some move becomes enabled
  kAlap,           ///< delay as long as invariants/windows permit
  kUniformRandom,  ///< pick a move and a uniform time point in its window
};

const char* to_string(SchedulerPolicy p);

struct DesOptions {
  SchedulerPolicy policy = SchedulerPolicy::kAlap;
  std::size_t max_steps = 1'000'000;
  double time_limit = 1e18;
};

using DesPredicate = std::function<bool(const ta::ConcreteState&)>;

struct DesRun {
  bool terminated = false;   ///< terminal predicate reached
  double end_time = 0.0;     ///< time at termination (or at stall/limit)
  /// First-hit time per watch predicate; negative means "never hit".
  std::vector<double> first_hit;
  /// Per-monitor flag: false if the monitor predicate was ever violated.
  std::vector<bool> monitor_ok;
};

class DesSimulator {
 public:
  DesSimulator(const ta::System& sys, std::uint64_t seed,
               const DesOptions& opts = {});

  /// Simulates until `terminal` holds, time diverges, or limits hit.
  /// `watch` predicates record their first satisfaction time; `monitors`
  /// are safety predicates checked in every visited state.
  DesRun run(const DesPredicate& terminal,
             const std::vector<DesPredicate>& watch = {},
             const std::vector<DesPredicate>& monitors = {});

 private:
  struct MoveWindow {
    ta::Move move;
    double lo = 0.0;
    double hi = 0.0;
  };

  /// Enabled-move windows [earliest, latest] relative to now, already
  /// clamped to the global invariant bound.
  std::vector<MoveWindow> move_windows(const ta::ConcreteState& s) const;

  void fire(ta::ConcreteState& s, const ta::Move& m);

  ta::ConcreteSemantics sem_;
  DesOptions opts_;
  common::Rng rng_;
};

/// Aggregated statistics over many DES runs (the modes column of Table I).
struct DesEnsemble {
  std::size_t runs = 0;
  std::size_t terminated = 0;
  common::RunningStats end_time;
  std::vector<std::size_t> watch_hits;
  std::vector<std::size_t> monitor_violations;
};

DesEnsemble run_ensemble(const ta::System& sys, std::size_t runs,
                         std::uint64_t seed, const DesOptions& opts,
                         const DesPredicate& terminal,
                         const std::vector<DesPredicate>& watch = {},
                         const std::vector<DesPredicate>& monitors = {});

}  // namespace quanta::sta
