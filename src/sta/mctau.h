// The mctau bridge (§III): analyse MODEST-style models with the UPPAAL-like
// timed engine. Probabilistic branches are overapproximated by
// nondeterministic edges; consequently
//   - invariants and unreachability verdicts transfer exactly ("true"/"0"),
//   - quantitative probabilities collapse to the trivial interval [0,1],
//   - expected values are not expressible (n/a),
// which is precisely the mctau column of the paper's Table I.
#pragma once

#include <optional>
#include <string>

#include "mc/query.h"
#include "ta/model.h"

namespace quanta::sta {

/// Replaces every probabilistic edge by one ordinary edge per branch.
/// Process and location indices are preserved, so state predicates written
/// for the original model remain valid.
ta::System strip_probabilities(const ta::System& sys);

/// A probability that mctau could only bound. `exact` is set when the
/// overapproximation is conclusive (bad states unreachable -> 0, or goal
/// states unavoidable -> 1); otherwise the interval is [lo, hi] = [0, 1].
struct ProbabilityBound {
  double lo = 0.0;
  double hi = 1.0;
  std::optional<double> exact;

  std::string to_string() const;
};

/// Evaluates "Pmax(F bad)" on the TA overapproximation: 0 if bad is
/// unreachable even nondeterministically, [0,1] otherwise.
ProbabilityBound mctau_reach_probability(const ta::System& pta_model,
                                         const mc::StatePredicate& bad,
                                         const mc::ReachOptions& opts = {});

/// Evaluates "A[] safe" exactly on the TA overapproximation (sound for the
/// PTA: more behaviour, so "true" transfers).
bool mctau_invariant(const ta::System& pta_model,
                     const mc::StatePredicate& safe,
                     const mc::ReachOptions& opts = {});

}  // namespace quanta::sta
