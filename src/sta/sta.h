// The MODEST single-formalism, multi-solution idea (§III of the paper):
// one model — a ta::System, optionally with probabilistic branches and
// stochastic exit rates — analysed by different engines according to the
// syntactic class it falls into:
//
//   TA   (no probabilistic constructs)  -> mctau  -> UPPAAL-style engine (mc)
//   PTA  (discrete probabilistic)       -> mcpta  -> digital clocks + MDP (pta/mdp)
//   STA  (continuous stochastic rates)  -> modes  -> discrete-event simulation (des)
//
// PTA models can additionally be *overapproximated* as TA (mctau bridge) and
// *simulated* (modes), exactly as Table I does for the BRP.
#pragma once

#include "ta/model.h"

namespace quanta::sta {

enum class ModelClass {
  kTa,   ///< plain timed automaton: no probabilistic constructs
  kPta,  ///< discrete probability distributions on edges
  kSta,  ///< stochastic delays (non-default exit rates) as well
};

/// Syntactic classification of a model, mirroring how the MODEST toolset
/// decides which backends apply.
ModelClass classify(const ta::System& sys);

const char* to_string(ModelClass c);

}  // namespace quanta::sta
