#include "sta/des.h"

#include <algorithm>
#include <cmath>

namespace quanta::sta {

namespace {
constexpr double kTimeEps = 1e-9;
}

const char* to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kAsap:
      return "ASAP";
    case SchedulerPolicy::kAlap:
      return "ALAP";
    case SchedulerPolicy::kUniformRandom:
      return "uniform";
  }
  return "?";
}

DesSimulator::DesSimulator(const ta::System& sys, std::uint64_t seed,
                           const DesOptions& opts)
    : sem_(sys), opts_(opts), rng_(seed) {}

std::vector<DesSimulator::MoveWindow> DesSimulator::move_windows(
    const ta::ConcreteState& s) const {
  const double global_inv = sem_.invariant_max_delay(s);
  std::vector<MoveWindow> windows;
  for (ta::Move& m : sem_.symbolic().enabled_moves(s.locs, s.vars)) {
    double lo = 0.0;
    double hi = global_inv;
    bool feasible = true;
    for (const auto& [p, e] : m.participants) {
      const ta::Edge& edge =
          sem_.system().process(p).edges.at(static_cast<std::size_t>(e));
      double d = sem_.min_enabling_delay(edge, s);
      if (d >= ta::ConcreteSemantics::kInfDelay) {
        feasible = false;
        break;
      }
      lo = std::max(lo, d);
      hi = std::min(hi, sem_.max_enabling_delay(edge, s));
    }
    if (!feasible || lo > hi + kTimeEps) continue;
    windows.push_back(MoveWindow{std::move(m), lo, std::min(hi, global_inv)});
  }
  return windows;
}

void DesSimulator::fire(ta::ConcreteState& s, const ta::Move& m) {
  std::vector<int> branch_choice(m.participants.size(), -1);
  for (std::size_t k = 0; k < m.participants.size(); ++k) {
    const auto& [p, e] = m.participants[k];
    const ta::Edge& edge =
        sem_.system().process(p).edges.at(static_cast<std::size_t>(e));
    if (!edge.probabilistic()) continue;
    std::vector<double> weights;
    weights.reserve(edge.branches.size());
    for (const auto& b : edge.branches) weights.push_back(b.weight);
    branch_choice[k] = static_cast<int>(rng_.weighted_choice(weights));
  }
  sem_.execute(s, m, branch_choice);
}

DesRun DesSimulator::run(const DesPredicate& terminal,
                         const std::vector<DesPredicate>& watch,
                         const std::vector<DesPredicate>& monitors) {
  ta::ConcreteState s = sem_.initial();
  DesRun result;
  result.first_hit.assign(watch.size(), -1.0);
  result.monitor_ok.assign(monitors.size(), true);
  double t = 0.0;

  auto observe = [&]() {
    for (std::size_t w = 0; w < watch.size(); ++w) {
      if (result.first_hit[w] < 0.0 && watch[w](s)) result.first_hit[w] = t;
    }
    for (std::size_t mo = 0; mo < monitors.size(); ++mo) {
      if (result.monitor_ok[mo] && !monitors[mo](s)) result.monitor_ok[mo] = false;
    }
  };

  for (std::size_t step = 0; step < opts_.max_steps; ++step) {
    observe();
    if (terminal && terminal(s)) {
      result.terminated = true;
      result.end_time = t;
      return result;
    }

    if (sem_.symbolic().delay_forbidden(s.locs, s.vars)) {
      auto moves = sem_.enabled_moves_now(s);
      if (moves.empty()) break;  // timelock
      fire(s, moves[static_cast<std::size_t>(rng_.uniform_int(
                  0, static_cast<int>(moves.size()) - 1))]);
      continue;
    }

    auto windows = move_windows(s);
    if (windows.empty()) break;  // nothing can ever happen: time diverges

    double d = 0.0;
    switch (opts_.policy) {
      case SchedulerPolicy::kAsap: {
        d = windows.front().lo;
        for (const auto& w : windows) d = std::min(d, w.lo);
        break;
      }
      case SchedulerPolicy::kAlap: {
        d = 0.0;
        for (const auto& w : windows) d = std::max(d, w.hi);
        break;
      }
      case SchedulerPolicy::kUniformRandom: {
        const auto& w = windows[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<int>(windows.size()) - 1))];
        d = rng_.uniform(w.lo, w.hi);
        break;
      }
    }
    d = std::max(0.0, d);
    if (t + d > opts_.time_limit) {
      result.end_time = opts_.time_limit;
      return result;
    }
    sem_.delay(s, d);
    t += d;

    auto moves = sem_.enabled_moves_now(s);
    if (moves.empty()) break;  // numeric corner: treat as stalled
    fire(s, moves[static_cast<std::size_t>(
                rng_.uniform_int(0, static_cast<int>(moves.size()) - 1))]);
  }
  observe();
  result.end_time = t;
  return result;
}

DesEnsemble run_ensemble(const ta::System& sys, std::size_t runs,
                         std::uint64_t seed, const DesOptions& opts,
                         const DesPredicate& terminal,
                         const std::vector<DesPredicate>& watch,
                         const std::vector<DesPredicate>& monitors) {
  DesEnsemble ens;
  ens.runs = runs;
  ens.watch_hits.assign(watch.size(), 0);
  ens.monitor_violations.assign(monitors.size(), 0);
  DesSimulator sim(sys, seed, opts);
  for (std::size_t r = 0; r < runs; ++r) {
    DesRun run = sim.run(terminal, watch, monitors);
    if (run.terminated) {
      ++ens.terminated;
      ens.end_time.add(run.end_time);
    }
    for (std::size_t w = 0; w < watch.size(); ++w) {
      if (run.first_hit[w] >= 0.0) ++ens.watch_hits[w];
    }
    for (std::size_t mo = 0; mo < monitors.size(); ++mo) {
      if (!run.monitor_ok[mo]) ++ens.monitor_violations[mo];
    }
  }
  return ens;
}

}  // namespace quanta::sta
