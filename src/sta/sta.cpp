#include "sta/sta.h"

namespace quanta::sta {

ModelClass classify(const ta::System& sys) {
  bool stochastic_rates = false;
  for (int p = 0; p < sys.process_count(); ++p) {
    for (const auto& loc : sys.process(p).locations) {
      if (loc.exit_rate != 1.0) stochastic_rates = true;
    }
  }
  if (stochastic_rates) return ModelClass::kSta;
  if (sys.has_probabilistic()) return ModelClass::kPta;
  return ModelClass::kTa;
}

const char* to_string(ModelClass c) {
  switch (c) {
    case ModelClass::kTa:
      return "TA";
    case ModelClass::kPta:
      return "PTA";
    case ModelClass::kSta:
      return "STA";
  }
  return "?";
}

}  // namespace quanta::sta
