#include "sta/mctau.h"

#include <sstream>

namespace quanta::sta {

ta::System strip_probabilities(const ta::System& sys) {
  ta::System stripped = sys;
  for (int p = 0; p < stripped.process_count(); ++p) {
    ta::Process& proc = stripped.process_mut(p);
    std::vector<ta::Edge> edges;
    edges.reserve(proc.edges.size());
    for (const ta::Edge& e : proc.edges) {
      if (!e.probabilistic()) {
        edges.push_back(e);
        continue;
      }
      for (const ta::ProbBranch& b : e.branches) {
        ta::Edge ne = e;
        ne.branches.clear();
        ne.target = b.target;
        ne.resets = b.resets;
        ne.update = b.update;
        if (!b.label.empty()) ne.label = e.label + "/" + b.label;
        edges.push_back(std::move(ne));
      }
    }
    proc.edges = std::move(edges);
  }
  stripped.validate();
  return stripped;
}

std::string ProbabilityBound::to_string() const {
  if (exact) {
    std::ostringstream os;
    os << *exact;
    return os.str();
  }
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

ProbabilityBound mctau_reach_probability(const ta::System& pta_model,
                                         const mc::StatePredicate& bad,
                                         const mc::ReachOptions& opts) {
  ta::System stripped = strip_probabilities(pta_model);
  mc::ReachResult r = mc::reachable(stripped, bad, opts);
  ProbabilityBound bound;
  if (r.verdict == common::Verdict::kViolated) {
    // Unreachable in the stripped system — probability is exactly 0. A
    // truncated search (kUnknown) keeps the trivial [0, 1] bound.
    bound.lo = bound.hi = 0.0;
    bound.exact = 0.0;
  }
  return bound;
}

bool mctau_invariant(const ta::System& pta_model,
                     const mc::StatePredicate& safe,
                     const mc::ReachOptions& opts) {
  ta::System stripped = strip_probabilities(pta_model);
  return mc::check_invariant(stripped, safe, opts).holds();
}

}  // namespace quanta::sta
