// UPPAAL-CORA-style minimum-cost reachability for priced timed automata:
// locations accumulate cost at a rate per time unit, edges charge a discrete
// cost, and the engine finds the cheapest way to reach a goal predicate.
// Solved with Dijkstra over the digital-clocks semantics (DESIGN.md §4.2);
// exact for closed, diagonal-free models with integer rates and costs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/pred.h"
#include "common/verdict.h"
#include "core/observer.h"
#include "core/search.h"
#include "ta/digital.h"

namespace quanta::cora {

/// Structural predicate over digital states; build with
/// common::loc_index_pred / pred_and / pred_or / pred_not (or labeled_pred
/// for closures) so checkpoint fingerprints can tell goals apart.
using CostPredicate = common::Predicate<ta::DigitalState>;

/// Cost annotations for a ta::System. Indices follow the system's process /
/// location / edge numbering; missing entries default to 0.
class PriceModel {
 public:
  explicit PriceModel(const ta::System& sys);

  /// Cost per time unit while process `p` is in location `loc`.
  void set_location_rate(int process, int location, std::int64_t rate);
  /// One-off cost of taking the edge.
  void set_edge_cost(int process, int edge, std::int64_t cost);

  std::int64_t location_rate(int process, int location) const {
    return rates_[static_cast<std::size_t>(process)][static_cast<std::size_t>(location)];
  }
  std::int64_t edge_cost(int process, int edge) const {
    return edge_costs_[static_cast<std::size_t>(process)][static_cast<std::size_t>(edge)];
  }

  /// Cost of one unit delay in the given configuration: the sum of all
  /// active location rates.
  std::int64_t delay_rate(const std::vector<int>& locs) const;
  /// Total edge cost of a synchronised move.
  std::int64_t move_cost(const ta::Move& m) const;

 private:
  std::vector<std::vector<std::int64_t>> rates_;
  std::vector<std::vector<std::int64_t>> edge_costs_;
};

struct MinCostResult {
  /// kHolds = the goal was popped from the cost-ordered queue, so `cost` is
  /// the exact optimum (Dijkstra invariant — sound even if a budget would
  /// have tripped later); kViolated = the goal is unreachable (queue
  /// exhausted); kUnknown = search truncated before either.
  common::Verdict verdict = common::Verdict::kUnknown;
  std::int64_t cost = 0;
  core::SearchStats stats;
  /// Action labels along one cheapest path ("tick" for unit delays).
  std::vector<std::string> trace;
  /// Checkpoint/resume outcome of this run (MinCostOptions::checkpoint).
  ckpt::ResumeInfo resume;

  bool reachable() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

struct MinCostOptions {
  core::SearchLimits limits{.max_states = 10'000'000, .budget = {}};
  bool record_trace = false;
  /// Crash-safe checkpoint/resume policy (src/ckpt), Provider::kPriced. A
  /// snapshot captures the store, the cost-ordered worklist (restored with
  /// its heap layout intact, so pop order is bit-identical) and the per-node
  /// tentative costs / predecessors; deltas (QCKPD1) record only appended
  /// states plus the nodes whose tentative cost changed since the last save
  /// — Dijkstra relaxations mutate in place, so changed nodes are tracked in
  /// a dirty journal rather than assumed append-only. The fingerprint covers
  /// the system, every price rate and edge cost, record_trace and the goal
  /// predicate's canonical AST.
  ckpt::Options checkpoint;
  /// Instrumentation for the underlying search (also drives the throttling
  /// observers of tools/ckpt_smoke).
  core::ExplorationObserver* observer = nullptr;
};

/// Minimum accumulated cost over all runs reaching `goal`.
MinCostResult min_cost_reachability(const ta::System& sys,
                                    const PriceModel& prices,
                                    const CostPredicate& goal,
                                    const MinCostOptions& opts = {});

}  // namespace quanta::cora
