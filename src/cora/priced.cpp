#include "cora/priced.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace quanta::cora {

PriceModel::PriceModel(const ta::System& sys) {
  rates_.resize(static_cast<std::size_t>(sys.process_count()));
  edge_costs_.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    rates_[static_cast<std::size_t>(p)].assign(sys.process(p).locations.size(), 0);
    edge_costs_[static_cast<std::size_t>(p)].assign(sys.process(p).edges.size(), 0);
  }
}

void PriceModel::set_location_rate(int process, int location, std::int64_t rate) {
  if (rate < 0) throw std::invalid_argument("negative cost rates unsupported");
  rates_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(location)) = rate;
}

void PriceModel::set_edge_cost(int process, int edge, std::int64_t cost) {
  if (cost < 0) throw std::invalid_argument("negative edge costs unsupported");
  edge_costs_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(edge)) = cost;
}

std::int64_t PriceModel::delay_rate(const std::vector<int>& locs) const {
  std::int64_t total = 0;
  for (std::size_t p = 0; p < locs.size(); ++p) {
    total += rates_[p][static_cast<std::size_t>(locs[p])];
  }
  return total;
}

std::int64_t PriceModel::move_cost(const ta::Move& m) const {
  std::int64_t total = 0;
  for (const auto& [p, e] : m.participants) {
    total += edge_costs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)];
  }
  return total;
}

MinCostResult min_cost_reachability(
    const ta::System& sys, const PriceModel& prices,
    const std::function<bool(const ta::DigitalState&)>& goal,
    const MinCostOptions& opts) {
  ta::DigitalSemantics sem(sys);

  struct Entry {
    std::int64_t cost;
    std::int32_t node;
    bool operator>(const Entry& o) const { return cost > o.cost; }
  };
  struct NodeInfo {
    std::int64_t best;
    std::int32_t parent;
    std::string action;
  };

  std::vector<ta::DigitalState> states;
  std::vector<NodeInfo> info;
  std::unordered_map<ta::DigitalState, std::int32_t, ta::DigitalStateHash> index;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [it, ins] = index.try_emplace(std::move(s),
                                       static_cast<std::int32_t>(states.size()));
    if (ins) {
      states.push_back(it->first);
      info.push_back(NodeInfo{std::numeric_limits<std::int64_t>::max(), -1, {}});
    }
    return it->second;
  };

  auto relax = [&](std::int32_t to, std::int64_t cost, std::int32_t from,
                   std::string action) {
    if (cost < info[static_cast<std::size_t>(to)].best) {
      info[static_cast<std::size_t>(to)] =
          NodeInfo{cost, from, opts.record_trace ? std::move(action) : std::string{}};
      queue.push(Entry{cost, to});
    }
  };

  std::int32_t init = intern(sem.initial());
  relax(init, 0, -1, "init");

  MinCostResult result;
  while (!queue.empty()) {
    auto [cost, node] = queue.top();
    queue.pop();
    if (cost > info[static_cast<std::size_t>(node)].best) continue;  // stale
    ++result.states_explored;
    const ta::DigitalState state = states[static_cast<std::size_t>(node)];
    if (goal(state)) {
      result.reachable = true;
      result.cost = cost;
      if (opts.record_trace) {
        for (std::int32_t cur = node; cur >= 0;
             cur = info[static_cast<std::size_t>(cur)].parent) {
          result.trace.push_back(info[static_cast<std::size_t>(cur)].action);
        }
        std::reverse(result.trace.begin(), result.trace.end());
      }
      return result;
    }
    if (states.size() >= opts.max_states) break;

    for (ta::Move& m : sem.enabled_moves(state)) {
      std::int64_t c = cost + prices.move_cost(m);
      std::string label =
          opts.record_trace ? m.describe(sys) : std::string{};
      relax(intern(sem.apply(state, m)), c, node, std::move(label));
    }
    if (sem.can_delay(state)) {
      std::int64_t c = cost + prices.delay_rate(state.locs);
      relax(intern(sem.delay_one(state)), c, node, "tick");
    }
  }
  return result;
}

}  // namespace quanta::cora
