#include "cora/priced.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "ckpt/delta.h"
#include "ckpt/snapshot_core.h"
#include "ckpt/snapshot_ta.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::cora {

PriceModel::PriceModel(const ta::System& sys) {
  rates_.resize(static_cast<std::size_t>(sys.process_count()));
  edge_costs_.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    rates_[static_cast<std::size_t>(p)].assign(sys.process(p).locations.size(), 0);
    edge_costs_[static_cast<std::size_t>(p)].assign(sys.process(p).edges.size(), 0);
  }
}

void PriceModel::set_location_rate(int process, int location, std::int64_t rate) {
  if (rate < 0) throw std::invalid_argument("negative cost rates unsupported");
  rates_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(location)) = rate;
}

void PriceModel::set_edge_cost(int process, int edge, std::int64_t cost) {
  if (cost < 0) throw std::invalid_argument("negative edge costs unsupported");
  edge_costs_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(edge)) = cost;
}

std::int64_t PriceModel::delay_rate(const std::vector<int>& locs) const {
  std::int64_t total = 0;
  for (std::size_t p = 0; p < locs.size(); ++p) {
    total += rates_[p][static_cast<std::size_t>(locs[p])];
  }
  return total;
}

std::int64_t PriceModel::move_cost(const ta::Move& m) const {
  std::int64_t total = 0;
  for (const auto& [p, e] : m.participants) {
    total += edge_costs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)];
  }
  return total;
}

namespace {

constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max();

void write_str(ckpt::io::Writer& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.bytes(s.data(), s.size());
}

bool read_str(ckpt::io::Reader& r, std::string* out) {
  const std::uint32_t len = r.u32();
  if (!r.ok() || !r.fits(len, 1)) return false;
  out->resize(len);
  return len == 0 || r.bytes(out->data(), len);
}

/// Dijkstra over the digital semantics with Provider::kPriced checkpointing.
/// The resumable state is the store, the cost-ordered worklist (whose heap
/// array round-trips verbatim, keeping the pop order bit-identical) and the
/// per-node (best, parent, action) table. Relaxations mutate the table in
/// place, so deltas carry a dirty-id journal — every node whose entry
/// changed since the last save — instead of assuming append-only growth.
class PricedSearch {
 public:
  struct NodeInfo {
    std::int64_t best;
    std::int32_t parent;
    std::string action;
  };

  PricedSearch(const ta::System& sys, const PriceModel& prices,
               const CostPredicate& goal, const MinCostOptions& opts)
      : sem_(sys),
        prices_(prices),
        goal_(goal),
        opts_(opts),
        queue_(core::SearchOrder::kPriority) {
    if (opts_.checkpoint.enabled()) {
      chain_.emplace(opts_.checkpoint.path, ckpt::Provider::kPriced,
                     snapshot_fingerprint(), opts_.checkpoint.max_deltas);
    }
  }

  /// The model skeleton, the complete price annotation, the trace switch
  /// (it changes the serialized payload) and the canonical AST of the goal.
  std::uint64_t snapshot_fingerprint() const {
    ckpt::Fingerprint fp;
    fp.mix(0x434F5241u)  // "CORA"
        .mix(ckpt::fingerprint(sem_.system()))
        .mix(opts_.record_trace ? 1u : 0u)
        .mix_str(goal_.canonical());
    const ta::System& sys = sem_.system();
    for (int p = 0; p < sys.process_count(); ++p) {
      for (std::size_t l = 0; l < sys.process(p).locations.size(); ++l) {
        fp.mix(static_cast<std::uint64_t>(
            prices_.location_rate(p, static_cast<int>(l))));
      }
      for (std::size_t e = 0; e < sys.process(p).edges.size(); ++e) {
        fp.mix(static_cast<std::uint64_t>(
            prices_.edge_cost(p, static_cast<int>(e))));
      }
    }
    return fp.digest();
  }

  bool restore_from(const ckpt::Chain& chain) {
    const ckpt::Section* sec_store = chain.base.find(ckpt::kSecStore);
    const ckpt::Section* sec_work = chain.base.find(ckpt::kSecWorklist);
    const ckpt::Section* sec_stats = chain.base.find(ckpt::kSecSearchStats);
    const ckpt::Section* sec_payload = chain.base.find(ckpt::kSecEnginePayload);
    if (sec_store == nullptr || sec_work == nullptr || sec_stats == nullptr ||
        sec_payload == nullptr) {
      return false;
    }
    std::vector<ta::DigitalState> states;
    std::vector<std::uint8_t> covered;
    {
      ckpt::io::Reader r(sec_store->payload);
      if (!ckpt::read_store_vectors<ta::DigitalState>(
              r, store_.options().inclusion, store_.options().tombstone_covered,
              ckpt::read_digital_state, &states, &covered)) {
        return false;
      }
    }
    std::vector<core::Worklist::Entry> entries;
    {
      ckpt::io::Reader r(sec_work->payload);
      if (!ckpt::read_worklist_entries(r, core::SearchOrder::kPriority,
                                       &entries)) {
        return false;
      }
    }
    std::uint64_t explored = 0;
    std::uint64_t transitions = 0;
    {
      ckpt::io::Reader r(sec_stats->payload);
      if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
    }
    std::vector<NodeInfo> info;
    {
      ckpt::io::Reader r(sec_payload->payload);
      const std::uint64_t n = r.u64();
      if (!r.ok() || n != states.size() || !r.fits(n, 12)) return false;
      info.resize(static_cast<std::size_t>(n),
                  NodeInfo{kInfCost, -1, {}});
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!read_info(r, n, &info[static_cast<std::size_t>(i)])) return false;
      }
      if (!r.ok()) return false;
    }
    std::uint64_t journal_len = 0;
    for (std::uint8_t c : covered) journal_len += c != 0 ? 1 : 0;
    for (const ckpt::Delta& d : chain.deltas) {
      const ckpt::Section* d_store = d.find(ckpt::kSecStoreDelta);
      const ckpt::Section* d_work = d.find(ckpt::kSecWorklistDelta);
      const ckpt::Section* d_stats = d.find(ckpt::kSecSearchStats);
      const ckpt::Section* d_payload = d.find(ckpt::kSecEnginePayload);
      if (d_store == nullptr || d_work == nullptr || d_stats == nullptr ||
          d_payload == nullptr) {
        return false;
      }
      {
        ckpt::io::Reader r(d_store->payload);
        if (!ckpt::apply_store_delta<ta::DigitalState>(
                r, ckpt::read_digital_state, &states, &covered, &journal_len)) {
          return false;
        }
      }
      info.resize(states.size(), NodeInfo{kInfCost, -1, {}});
      {
        ckpt::io::Reader r(d_work->payload);
        if (!ckpt::apply_worklist_delta(r, &entries)) return false;
      }
      {
        ckpt::io::Reader r(d_stats->payload);
        if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
      }
      {
        ckpt::io::Reader r(d_payload->payload);
        const std::uint64_t base_n = r.u64();
        const std::uint64_t n_dirty = r.u64();
        if (!r.ok() || base_n > states.size() || !r.fits(n_dirty, 16)) {
          return false;
        }
        for (std::uint64_t k = 0; k < n_dirty; ++k) {
          const std::int32_t id = r.i32();
          if (id < 0 || static_cast<std::size_t>(id) >= info.size()) {
            return false;
          }
          if (!read_info(r, info.size(), &info[static_cast<std::size_t>(id)])) {
            return false;
          }
        }
        if (!r.ok()) return false;
      }
    }

    prev_entries_ = entries;
    store_ = core::StateStore<ta::DigitalState>::restore(
        store_.options(), std::move(states), std::move(covered));
    info_ = std::move(info);
    dirty_flag_.assign(info_.size(), 0);
    dirty_.clear();
    queue_.restore(std::move(entries));
    baseline_explored_ = explored;
    baseline_transitions_ = transitions;
    saved_states_ = store_.size();
    if (chain_.has_value()) chain_->adopt(chain);
    return true;
  }

  bool save_snapshot(const core::SearchStats& stats,
                     const core::Worklist::Entry& pending) {
    if (!chain_.has_value()) return false;
    // The pending entry re-queues at the BACK: the priority restore adopts
    // the heap array verbatim and sifts a single trailing entry, which is
    // exactly where a just-popped minimum re-inserts without reshuffling.
    std::vector<core::Worklist::Entry> cur = queue_.snapshot();
    cur.push_back(pending);
    const std::uint64_t explored =
        baseline_explored_ + stats.states_explored - 1;
    const std::uint64_t transitions =
        baseline_transitions_ + stats.transitions;

    bool ok;
    if (chain_->want_base()) {
      ckpt::Snapshot snap;
      {
        ckpt::io::Writer w;
        ckpt::write_store(w, store_, ckpt::write_digital_state);
        snap.add_section(ckpt::kSecStore, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist(w, queue_, nullptr, &pending);
        snap.add_section(ckpt::kSecWorklist, std::move(w));
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        snap.add_section(ckpt::kSecSearchStats, std::move(w));
      }
      {
        ckpt::io::Writer w;
        w.u64(info_.size());
        for (const NodeInfo& ni : info_) write_info(w, ni);
        snap.add_section(ckpt::kSecEnginePayload, std::move(w));
      }
      ok = chain_->save_base(std::move(snap));
    } else {
      std::vector<ckpt::Section> secs;
      {
        ckpt::io::Writer w;
        ckpt::write_store_delta(w, store_, saved_states_, /*base_journal=*/0,
                                ckpt::write_digital_state);
        secs.push_back(ckpt::Section{ckpt::kSecStoreDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_worklist_delta(w, prev_entries_, cur);
        secs.push_back(ckpt::Section{ckpt::kSecWorklistDelta, w.take()});
      }
      {
        ckpt::io::Writer w;
        ckpt::write_search_stats(w, explored, transitions);
        secs.push_back(ckpt::Section{ckpt::kSecSearchStats, w.take()});
      }
      {
        ckpt::io::Writer w;
        w.u64(saved_states_);
        w.u64(dirty_.size());
        for (std::int32_t id : dirty_) {
          w.i32(id);
          write_info(w, info_[static_cast<std::size_t>(id)]);
        }
        secs.push_back(ckpt::Section{ckpt::kSecEnginePayload, w.take()});
      }
      ok = chain_->save_delta_link(std::move(secs));
    }
    if (ok) {
      saved_states_ = store_.size();
      for (std::int32_t id : dirty_) {
        dirty_flag_[static_cast<std::size_t>(id)] = 0;
      }
      dirty_.clear();
      prev_entries_ = std::move(cur);
    }
    return ok;
  }

  MinCostResult run(bool resumed, ckpt::ResumeInfo* resume_out) {
    MinCostResult result;
    if (resume_out != nullptr) result.resume = *resume_out;
    if (!resumed) {
      std::int32_t init = intern(sem_.initial());
      relax(init, 0, -1, "init");
    }
    core::CheckpointHook hook;
    const core::CheckpointHook* hook_ptr = nullptr;
    const std::uint64_t interval = opts_.checkpoint.effective_interval();
    if (chain_.has_value() &&
        (opts_.checkpoint.save_on_stop || interval != 0)) {
      hook.interval = interval;
      hook.sink = [this, &result](const core::SearchStats& s,
                                  const core::Worklist::Entry& pending) {
        if (s.stop != common::StopReason::kCompleted &&
            !opts_.checkpoint.save_on_stop) {
          return;
        }
        if (save_snapshot(s, pending)) result.resume.saved = true;
      };
      hook_ptr = &hook;
    }
    std::int32_t goal_node = -1;
    result.stats = core::explore(
        store_, queue_, opts_.limits,
        [&](const core::Worklist::Entry& e) {
          if (e.key > info_[static_cast<std::size_t>(e.id)].best) {
            return core::Visit::kSkip;  // stale entry
          }
          if (goal_(store_.state(e.id))) {
            goal_node = e.id;
            result.verdict = common::Verdict::kHolds;
            result.cost = e.key;
            return core::Visit::kStop;
          }
          return core::Visit::kContinue;
        },
        [&](const core::Worklist::Entry& e) -> std::size_t {
          const ta::DigitalState state = store_.state(e.id);
          std::size_t taken = 0;
          for (ta::Move& m : sem_.enabled_moves(state)) {
            ++taken;
            std::int64_t c = e.key + prices_.move_cost(m);
            std::string label =
                opts_.record_trace ? m.describe(sem_.system()) : std::string{};
            relax(intern(sem_.apply(state, m)), c, e.id, std::move(label));
          }
          if (sem_.can_delay(state)) {
            ++taken;
            std::int64_t c = e.key + prices_.delay_rate(state.locs);
            relax(intern(sem_.delay_one(state)), c, e.id, "tick");
          }
          return taken;
        },
        opts_.observer, hook_ptr);
    result.stats.states_explored +=
        static_cast<std::size_t>(baseline_explored_);
    result.stats.transitions += static_cast<std::size_t>(baseline_transitions_);
    if (goal_node < 0 && !result.stats.truncated) {
      result.verdict = common::Verdict::kViolated;
    }
    if (goal_node >= 0 && opts_.record_trace) {
      for (std::int32_t cur = goal_node; cur >= 0;
           cur = info_[static_cast<std::size_t>(cur)].parent) {
        result.trace.push_back(info_[static_cast<std::size_t>(cur)].action);
      }
      std::reverse(result.trace.begin(), result.trace.end());
    }
    return result;
  }

 private:
  static void write_info(ckpt::io::Writer& w, const NodeInfo& ni) {
    w.i64(ni.best);
    w.i32(ni.parent);
    write_str(w, ni.action);
  }

  static bool read_info(ckpt::io::Reader& r, std::size_t n, NodeInfo* ni) {
    ni->best = r.i64();
    ni->parent = r.i32();
    if (!r.ok() || ni->parent < -1 ||
        (ni->parent >= 0 && static_cast<std::size_t>(ni->parent) >= n)) {
      return false;
    }
    return read_str(r, &ni->action);
  }

  std::int32_t intern(ta::DigitalState s) {
    auto [id, inserted] = store_.intern(std::move(s));
    if (inserted) {
      info_.push_back(NodeInfo{kInfCost, -1, {}});
      dirty_flag_.push_back(0);
      if (opts_.observer != nullptr) {
        opts_.observer->on_state_stored(id, store_.size());
      }
    }
    return id;
  }

  void relax(std::int32_t to, std::int64_t cost, std::int32_t from,
             std::string action) {
    NodeInfo& ni = info_[static_cast<std::size_t>(to)];
    if (cost < ni.best) {
      ni = NodeInfo{cost, from,
                    opts_.record_trace ? std::move(action) : std::string{}};
      queue_.push(to, cost);
      if (!dirty_flag_[static_cast<std::size_t>(to)]) {
        dirty_flag_[static_cast<std::size_t>(to)] = 1;
        dirty_.push_back(to);
      }
    }
  }

  ta::DigitalSemantics sem_;
  const PriceModel& prices_;
  const CostPredicate& goal_;
  const MinCostOptions& opts_;
  core::StateStore<ta::DigitalState> store_;
  // Dijkstra = the core loop with a cost-ordered worklist and lazy
  // decrease-key: stale queue entries are skipped on pop.
  core::Worklist queue_;
  std::vector<NodeInfo> info_;
  // Ids whose NodeInfo changed since the last successful save (each listed
  // once — the flag dedups repeat relaxations of the same node).
  std::vector<std::int32_t> dirty_;
  std::vector<char> dirty_flag_;
  std::uint64_t baseline_explored_ = 0;
  std::uint64_t baseline_transitions_ = 0;
  std::optional<ckpt::ChainWriter> chain_;
  std::size_t saved_states_ = 0;
  std::vector<core::Worklist::Entry> prev_entries_;
};

}  // namespace

MinCostResult min_cost_reachability(const ta::System& sys,
                                    const PriceModel& prices,
                                    const CostPredicate& goal,
                                    const MinCostOptions& opts) {
  opts.limits.validate("cora.min_cost_reachability");
  return common::governed(
      [&] {
        PricedSearch search(sys, prices, goal, opts);
        ckpt::ResumeInfo resume;
        bool resumed = false;
        if (opts.checkpoint.enabled()) {
          resume.path = opts.checkpoint.path;
          if (opts.checkpoint.resume) {
            ckpt::Chain chain;
            resume.load =
                ckpt::load_chain(opts.checkpoint.path,
                                 search.snapshot_fingerprint(),
                                 ckpt::Provider::kPriced, &chain);
            if (resume.load == ckpt::LoadStatus::kOk) {
              resumed = search.restore_from(chain);
              if (!resumed) resume.load = ckpt::LoadStatus::kCorrupt;
            }
            resume.resumed = resumed;
          }
        }
        return search.run(resumed, &resume);
      },
      [&opts](common::StopReason r) {
        MinCostResult result;
        result.stats.stop_for(r);
        result.resume.path = opts.checkpoint.path;
        return result;
      });
}

}  // namespace quanta::cora
