#include "cora/priced.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::cora {

PriceModel::PriceModel(const ta::System& sys) {
  rates_.resize(static_cast<std::size_t>(sys.process_count()));
  edge_costs_.resize(static_cast<std::size_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    rates_[static_cast<std::size_t>(p)].assign(sys.process(p).locations.size(), 0);
    edge_costs_[static_cast<std::size_t>(p)].assign(sys.process(p).edges.size(), 0);
  }
}

void PriceModel::set_location_rate(int process, int location, std::int64_t rate) {
  if (rate < 0) throw std::invalid_argument("negative cost rates unsupported");
  rates_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(location)) = rate;
}

void PriceModel::set_edge_cost(int process, int edge, std::int64_t cost) {
  if (cost < 0) throw std::invalid_argument("negative edge costs unsupported");
  edge_costs_.at(static_cast<std::size_t>(process)).at(static_cast<std::size_t>(edge)) = cost;
}

std::int64_t PriceModel::delay_rate(const std::vector<int>& locs) const {
  std::int64_t total = 0;
  for (std::size_t p = 0; p < locs.size(); ++p) {
    total += rates_[p][static_cast<std::size_t>(locs[p])];
  }
  return total;
}

std::int64_t PriceModel::move_cost(const ta::Move& m) const {
  std::int64_t total = 0;
  for (const auto& [p, e] : m.participants) {
    total += edge_costs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)];
  }
  return total;
}

namespace {

MinCostResult min_cost_impl(
    const ta::System& sys, const PriceModel& prices,
    const std::function<bool(const ta::DigitalState&)>& goal,
    const MinCostOptions& opts) {
  ta::DigitalSemantics sem(sys);

  struct NodeInfo {
    std::int64_t best;
    std::int32_t parent;
    std::string action;
  };

  core::StateStore<ta::DigitalState> store;
  // Dijkstra = the core loop with a cost-ordered worklist and lazy
  // decrease-key: stale queue entries are skipped on pop.
  core::Worklist queue(core::SearchOrder::kPriority);
  std::vector<NodeInfo> info;

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) {
      info.push_back(NodeInfo{std::numeric_limits<std::int64_t>::max(), -1, {}});
    }
    return id;
  };

  auto relax = [&](std::int32_t to, std::int64_t cost, std::int32_t from,
                   std::string action) {
    if (cost < info[static_cast<std::size_t>(to)].best) {
      info[static_cast<std::size_t>(to)] =
          NodeInfo{cost, from, opts.record_trace ? std::move(action) : std::string{}};
      queue.push(to, cost);
    }
  };

  std::int32_t init = intern(sem.initial());
  relax(init, 0, -1, "init");

  MinCostResult result;
  std::int32_t goal_node = -1;
  result.stats = core::explore(
      store, queue, opts.limits,
      [&](const core::Worklist::Entry& e) {
        if (e.key > info[static_cast<std::size_t>(e.id)].best) {
          return core::Visit::kSkip;  // stale entry
        }
        if (goal(store.state(e.id))) {
          goal_node = e.id;
          result.verdict = common::Verdict::kHolds;
          result.cost = e.key;
          return core::Visit::kStop;
        }
        return core::Visit::kContinue;
      },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store.state(e.id);
        std::size_t taken = 0;
        for (ta::Move& m : sem.enabled_moves(state)) {
          ++taken;
          std::int64_t c = e.key + prices.move_cost(m);
          std::string label =
              opts.record_trace ? m.describe(sys) : std::string{};
          relax(intern(sem.apply(state, m)), c, e.id, std::move(label));
        }
        if (sem.can_delay(state)) {
          ++taken;
          std::int64_t c = e.key + prices.delay_rate(state.locs);
          relax(intern(sem.delay_one(state)), c, e.id, "tick");
        }
        return taken;
      });
  if (goal_node < 0 && !result.stats.truncated) {
    result.verdict = common::Verdict::kViolated;
  }
  if (goal_node >= 0 && opts.record_trace) {
    for (std::int32_t cur = goal_node; cur >= 0;
         cur = info[static_cast<std::size_t>(cur)].parent) {
      result.trace.push_back(info[static_cast<std::size_t>(cur)].action);
    }
    std::reverse(result.trace.begin(), result.trace.end());
  }
  return result;
}

}  // namespace

MinCostResult min_cost_reachability(
    const ta::System& sys, const PriceModel& prices,
    const std::function<bool(const ta::DigitalState&)>& goal,
    const MinCostOptions& opts) {
  opts.limits.validate("cora.min_cost_reachability");
  return common::governed(
      [&] { return min_cost_impl(sys, prices, goal, opts); },
      [](common::StopReason r) {
        MinCostResult result;
        result.stats.stop_for(r);
        return result;
      });
}

}  // namespace quanta::cora
