// Snapshot codec for the shared exploration core: serializes a
// core::StateStore (with covered/tombstone bits), a core::Worklist and the
// running SearchStats counters into checkpoint sections, and rebuilds them
// on resume. The store section persists states in insertion order only —
// StateStore::restore re-derives the hash table deterministically, so the
// resumed search is bit-identical to the uninterrupted one.
//
// Engines plug in a state codec (write_state / read_state callables) for
// their state type; ckpt/snapshot_ta.h provides the zone-state codec.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/io.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::ckpt {

/// Section ids of the Provider::kExplore layout. Engine payload (parents,
/// moves, costs, ...) rides in kSecEnginePayload, opaque to this layer.
inline constexpr std::uint32_t kSecStore = 1;
inline constexpr std::uint32_t kSecWorklist = 2;
inline constexpr std::uint32_t kSecSearchStats = 3;
inline constexpr std::uint32_t kSecEnginePayload = 4;

/// Delta-record sections (src/ckpt/delta.h). A QCKPD1 record carries the
/// store/worklist *changes* since the previous chain link plus full rewrites
/// of the small sections (stats, engine payload suffix inside
/// kSecEnginePayload with an engine-chosen base-count prefix).
inline constexpr std::uint32_t kSecStoreDelta = 11;
inline constexpr std::uint32_t kSecWorklistDelta = 12;

template <typename S, typename Traits, typename WriteState>
void write_store(io::Writer& w, const core::StateStore<S, Traits>& store,
                 WriteState&& write_state) {
  w.u8(store.options().inclusion ? 1 : 0);
  w.u8(store.options().tombstone_covered ? 1 : 0);
  const std::size_t n = store.size();
  w.u64(n);
  for (std::size_t id = 0; id < n; ++id) {
    write_state(w, store.state(static_cast<std::int32_t>(id)));
  }
  for (std::size_t id = 0; id < n; ++id) {
    w.u8(store.covered(static_cast<std::int32_t>(id)) ? 1 : 0);
  }
}

/// Reads a write_store section into raw (states, covered) vectors — the
/// accumulator a delta chain replays into before the final
/// StateStore::restore. Returns false on option mismatch or malformed data.
template <typename S, typename ReadState>
bool read_store_vectors(io::Reader& r, bool inclusion, bool tombstone_covered,
                        ReadState&& read_state, std::vector<S>* states,
                        std::vector<std::uint8_t>* covered) {
  const bool file_inclusion = r.u8() != 0;
  const bool file_tombstone = r.u8() != 0;
  if (file_inclusion != inclusion || file_tombstone != tombstone_covered) {
    return false;
  }
  const std::uint64_t n = r.u64();
  if (!r.ok() || !r.fits(n, 1)) return false;
  states->clear();
  states->reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    S s;
    if (!read_state(r, &s)) return false;
    states->push_back(std::move(s));
  }
  covered->assign(static_cast<std::size_t>(n), 0);
  for (std::uint64_t i = 0; i < n; ++i) (*covered)[i] = r.u8();
  return r.ok();
}

/// Rebuilds a store snapshotted with write_store. `opts` must match the
/// serialized options (they are derived from the same engine options that
/// feed the fingerprint); returns false on any mismatch or malformed data.
template <typename S, typename Traits, typename ReadState>
bool read_store(io::Reader& r, typename core::StateStore<S, Traits>::Options opts,
                ReadState&& read_state, core::StateStore<S, Traits>* out) {
  std::vector<S> states;
  std::vector<std::uint8_t> covered;
  if (!read_store_vectors<S>(r, opts.inclusion, opts.tombstone_covered,
                             read_state, &states, &covered)) {
    return false;
  }
  *out = core::StateStore<S, Traits>::restore(opts, std::move(states),
                                              std::move(covered));
  return true;
}

/// Store changes since the previous chain link: the states appended beyond
/// `base_states` and the covered-journal suffix beyond `base_journal`.
/// States are append-only and covered bits only flip 0 -> 1, so this is a
/// complete diff (StateStore::covered_journal).
template <typename S, typename Traits, typename WriteState>
void write_store_delta(io::Writer& w, const core::StateStore<S, Traits>& store,
                       std::size_t base_states, std::size_t base_journal,
                       WriteState&& write_state) {
  const std::size_t n = store.size();
  w.u64(base_states);
  w.u64(n - base_states);
  for (std::size_t id = base_states; id < n; ++id) {
    write_state(w, store.state(static_cast<std::int32_t>(id)));
  }
  const std::vector<std::int32_t>& journal = store.covered_journal();
  w.u64(base_journal);
  w.u64(journal.size() - base_journal);
  for (std::size_t i = base_journal; i < journal.size(); ++i) {
    w.i32(journal[i]);
  }
}

/// Applies one write_store_delta record to the (states, covered) accumulator.
/// `journal_len` tracks the covered-flip count across the chain; both base
/// positions are validated against it so a delta never applies out of order.
template <typename S, typename ReadState>
bool apply_store_delta(io::Reader& r, ReadState&& read_state,
                       std::vector<S>* states,
                       std::vector<std::uint8_t>* covered,
                       std::uint64_t* journal_len) {
  const std::uint64_t base_states = r.u64();
  if (!r.ok() || base_states != states->size()) return false;
  const std::uint64_t appended = r.u64();
  if (!r.ok() || !r.fits(appended, 1)) return false;
  for (std::uint64_t i = 0; i < appended; ++i) {
    S s;
    if (!read_state(r, &s)) return false;
    states->push_back(std::move(s));
    covered->push_back(0);
  }
  const std::uint64_t base_journal = r.u64();
  if (!r.ok() || base_journal != *journal_len) return false;
  const std::uint64_t flips = r.u64();
  if (!r.ok() || !r.fits(flips, 4)) return false;
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::int32_t id = r.i32();
    if (id < 0 || static_cast<std::size_t>(id) >= covered->size()) return false;
    (*covered)[static_cast<std::size_t>(id)] = 1;
  }
  *journal_len += flips;
  return r.ok();
}

/// Serializes the pending worklist entries. `pending_first` / `pending_last`
/// re-queue the popped-but-unexpanded entry of an interrupted search at the
/// position the order pops next (front for BFS, back for DFS; a kPriority
/// restore adopts the serialized heap array verbatim and sifts a single
/// trailing pending entry into place, keeping delta chains byte-stable).
inline void write_worklist(io::Writer& w, const core::Worklist& work,
                           const core::Worklist::Entry* pending_front,
                           const core::Worklist::Entry* pending_back) {
  w.u8(static_cast<std::uint8_t>(work.order()));
  const std::vector<core::Worklist::Entry> entries = work.snapshot();
  std::uint64_t count = entries.size();
  if (pending_front != nullptr) ++count;
  if (pending_back != nullptr) ++count;
  w.u64(count);
  auto put = [&w](const core::Worklist::Entry& e) {
    w.i32(e.id);
    w.i64(e.key);
  };
  if (pending_front != nullptr) put(*pending_front);
  for (const core::Worklist::Entry& e : entries) put(e);
  if (pending_back != nullptr) put(*pending_back);
}

/// Worklist changes since the previous link, as a splice against the
/// previously serialized entry list: cur == prev[drop .. drop+keep) ++
/// appended. The matcher finds the first occurrence of cur's head in prev
/// and extends the common run — BFS turns into "drop the popped front, keep
/// the rest", DFS into "keep the untouched prefix", and a priority heap into
/// a moderate splice; any mismatch just lands in `appended`, so the encoding
/// is always exact. `prev` and `cur` are the caller-built full entry lists
/// (pending entry already positioned, per write_worklist).
inline void write_worklist_delta(io::Writer& w,
                                 const std::vector<core::Worklist::Entry>& prev,
                                 const std::vector<core::Worklist::Entry>& cur) {
  std::size_t drop = 0;
  std::size_t keep = 0;
  if (!cur.empty()) {
    for (std::size_t i = 0; i < prev.size(); ++i) {
      if (prev[i].id == cur[0].id && prev[i].key == cur[0].key) {
        std::size_t k = 0;
        while (i + k < prev.size() && k < cur.size() &&
               prev[i + k].id == cur[k].id && prev[i + k].key == cur[k].key) {
          ++k;
        }
        drop = i;
        keep = k;
        break;
      }
    }
  }
  w.u64(drop);
  w.u64(keep);
  w.u64(cur.size() - keep);
  for (std::size_t i = keep; i < cur.size(); ++i) {
    w.i32(cur[i].id);
    w.i64(cur[i].key);
  }
}

/// Applies one write_worklist_delta record to the entry-list accumulator.
inline bool apply_worklist_delta(io::Reader& r,
                                 std::vector<core::Worklist::Entry>* entries) {
  const std::uint64_t drop = r.u64();
  const std::uint64_t keep = r.u64();
  if (!r.ok() || drop + keep < keep || drop + keep > entries->size()) {
    return false;
  }
  entries->erase(entries->begin(),
                 entries->begin() + static_cast<std::ptrdiff_t>(drop));
  entries->resize(static_cast<std::size_t>(keep));
  const std::uint64_t appended = r.u64();
  if (!r.ok() || !r.fits(appended, 4 + 8)) return false;
  entries->reserve(entries->size() + static_cast<std::size_t>(appended));
  for (std::uint64_t i = 0; i < appended; ++i) {
    core::Worklist::Entry e;
    e.id = r.i32();
    e.key = r.i64();
    entries->push_back(e);
  }
  return r.ok();
}

/// Reads a write_worklist section into a raw entry list — the accumulator a
/// delta chain splices into before the final Worklist::restore.
inline bool read_worklist_entries(io::Reader& r, core::SearchOrder order,
                                  std::vector<core::Worklist::Entry>* out) {
  const std::uint8_t file_order = r.u8();
  if (file_order != static_cast<std::uint8_t>(order)) return false;
  const std::uint64_t count = r.u64();
  if (!r.ok() || !r.fits(count, 4 + 8)) return false;
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    core::Worklist::Entry e;
    e.id = r.i32();
    e.key = r.i64();
    out->push_back(e);
  }
  return r.ok();
}

inline bool read_worklist(io::Reader& r, core::Worklist* work) {
  std::vector<core::Worklist::Entry> entries;
  if (!read_worklist_entries(r, work->order(), &entries)) return false;
  work->restore(std::move(entries));
  return true;
}

/// The resumable counters of SearchStats. `states_explored` must already
/// exclude the pending entry's visit (core::CheckpointHook contract);
/// states_stored is derived from the store and stop/truncated reset to
/// running on resume.
inline void write_search_stats(io::Writer& w, std::uint64_t states_explored,
                               std::uint64_t transitions) {
  w.u64(states_explored);
  w.u64(transitions);
}

inline bool read_search_stats(io::Reader& r, std::uint64_t* states_explored,
                              std::uint64_t* transitions) {
  *states_explored = r.u64();
  *transitions = r.u64();
  return r.ok();
}

}  // namespace quanta::ckpt
