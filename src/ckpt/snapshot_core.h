// Snapshot codec for the shared exploration core: serializes a
// core::StateStore (with covered/tombstone bits), a core::Worklist and the
// running SearchStats counters into checkpoint sections, and rebuilds them
// on resume. The store section persists states in insertion order only —
// StateStore::restore re-derives the hash table deterministically, so the
// resumed search is bit-identical to the uninterrupted one.
//
// Engines plug in a state codec (write_state / read_state callables) for
// their state type; ckpt/snapshot_ta.h provides the zone-state codec.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/io.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::ckpt {

/// Section ids of the Provider::kExplore layout. Engine payload (parents,
/// moves, costs, ...) rides in kSecEnginePayload, opaque to this layer.
inline constexpr std::uint32_t kSecStore = 1;
inline constexpr std::uint32_t kSecWorklist = 2;
inline constexpr std::uint32_t kSecSearchStats = 3;
inline constexpr std::uint32_t kSecEnginePayload = 4;

template <typename S, typename Traits, typename WriteState>
void write_store(io::Writer& w, const core::StateStore<S, Traits>& store,
                 WriteState&& write_state) {
  w.u8(store.options().inclusion ? 1 : 0);
  w.u8(store.options().tombstone_covered ? 1 : 0);
  const std::size_t n = store.size();
  w.u64(n);
  for (std::size_t id = 0; id < n; ++id) {
    write_state(w, store.state(static_cast<std::int32_t>(id)));
  }
  for (std::size_t id = 0; id < n; ++id) {
    w.u8(store.covered(static_cast<std::int32_t>(id)) ? 1 : 0);
  }
}

/// Rebuilds a store snapshotted with write_store. `opts` must match the
/// serialized options (they are derived from the same engine options that
/// feed the fingerprint); returns false on any mismatch or malformed data.
template <typename S, typename Traits, typename ReadState>
bool read_store(io::Reader& r, typename core::StateStore<S, Traits>::Options opts,
                ReadState&& read_state, core::StateStore<S, Traits>* out) {
  const bool inclusion = r.u8() != 0;
  const bool tombstone = r.u8() != 0;
  if (inclusion != opts.inclusion || tombstone != opts.tombstone_covered) {
    return false;
  }
  const std::uint64_t n = r.u64();
  if (!r.ok() || !r.fits(n, 1)) return false;
  std::vector<S> states;
  states.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    S s;
    if (!read_state(r, &s)) return false;
    states.push_back(std::move(s));
  }
  std::vector<std::uint8_t> covered(static_cast<std::size_t>(n), 0);
  for (std::uint64_t i = 0; i < n; ++i) covered[i] = r.u8();
  if (!r.ok()) return false;
  *out = core::StateStore<S, Traits>::restore(opts, std::move(states),
                                              std::move(covered));
  return true;
}

/// Serializes the pending worklist entries. `pending_first` / `pending_last`
/// re-queue the popped-but-unexpanded entry of an interrupted search at the
/// position the order pops next (front for BFS, back for DFS; a kPriority
/// restore re-heapifies, so position is irrelevant there).
inline void write_worklist(io::Writer& w, const core::Worklist& work,
                           const core::Worklist::Entry* pending_front,
                           const core::Worklist::Entry* pending_back) {
  w.u8(static_cast<std::uint8_t>(work.order()));
  const std::vector<core::Worklist::Entry> entries = work.snapshot();
  std::uint64_t count = entries.size();
  if (pending_front != nullptr) ++count;
  if (pending_back != nullptr) ++count;
  w.u64(count);
  auto put = [&w](const core::Worklist::Entry& e) {
    w.i32(e.id);
    w.i64(e.key);
  };
  if (pending_front != nullptr) put(*pending_front);
  for (const core::Worklist::Entry& e : entries) put(e);
  if (pending_back != nullptr) put(*pending_back);
}

inline bool read_worklist(io::Reader& r, core::Worklist* work) {
  const std::uint8_t order = r.u8();
  if (order != static_cast<std::uint8_t>(work->order())) return false;
  const std::uint64_t count = r.u64();
  if (!r.ok() || !r.fits(count, 4 + 8)) return false;
  std::vector<core::Worklist::Entry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    core::Worklist::Entry e;
    e.id = r.i32();
    e.key = r.i64();
    entries.push_back(e);
  }
  if (!r.ok()) return false;
  work->restore(std::move(entries));
  return true;
}

/// The resumable counters of SearchStats. `states_explored` must already
/// exclude the pending entry's visit (core::CheckpointHook contract);
/// states_stored is derived from the store and stop/truncated reset to
/// running on resume.
inline void write_search_stats(io::Writer& w, std::uint64_t states_explored,
                               std::uint64_t transitions) {
  w.u64(states_explored);
  w.u64(transitions);
}

inline bool read_search_stats(io::Reader& r, std::uint64_t* states_explored,
                              std::uint64_t* transitions) {
  *states_explored = r.u64();
  *transitions = r.u64();
  return r.ok();
}

}  // namespace quanta::ckpt
