// Byte-level serialization primitives of the checkpoint format: a growing
// little-endian Writer and a bounds-checked Reader. Integers are written
// byte-by-byte (fixed little-endian layout, no struct dumps), so checkpoint
// files are portable across compilers and architectures; doubles travel as
// their IEEE-754 bit pattern.
//
// The Reader never throws and never reads out of bounds: any short read
// flips a sticky `ok()` flag and yields zeros from then on. Callers parse
// the whole section and check ok() once at the end — corrupted input
// degrades to a failed load, not UB. (Sections are CRC-checked before they
// reach a Reader, so ok() failing indicates a logic or version mismatch.)
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace quanta::ckpt::io {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint8_t b[4] = {};
    take(b, 4);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool bytes(void* out, std::size_t size) { return take(out, size); }

  /// A `count` prefix for `elem_size`-byte elements is plausible only when
  /// that many bytes actually remain — guards vector reserves against
  /// nonsense sizes from malformed input.
  bool fits(std::uint64_t count, std::size_t elem_size) {
    if (elem_size != 0 && count > remaining() / elem_size) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool ok() const { return ok_; }

 private:
  bool take(void* out, std::size_t size) {
    if (remaining() < size) {
      ok_ = false;
      std::memset(out, 0, size);
      p_ = end_;
      return false;
    }
    std::memcpy(out, p_, size);
    p_ += size;
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

}  // namespace quanta::ckpt::io
