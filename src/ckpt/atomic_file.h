// Internal file-I/O helpers shared by the base-snapshot and delta-record
// writers: atomic temp-then-rename whole-file writes (with a FaultInjector
// site in the middle of the write, modelling a crash that tears the temp
// file) and whole-file reads. Not part of the public ckpt API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace quanta::ckpt::internal {

/// Writes `buf` to <path>.tmp and renames it over <path>. Returns false on
/// any failure — the previous file at `path`, if any, is untouched and the
/// torn temp file is removed. `fault_site` is visited between two half-
/// writes (an injected exception there models SIGKILL mid-write).
bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& buf,
                       const char* fault_site);

enum class ReadFile { kOk, kNoFile, kIoError };

/// Reads the whole file into `out`. Never throws.
ReadFile read_file(const std::string& path, std::vector<std::uint8_t>* out);

}  // namespace quanta::ckpt::internal
