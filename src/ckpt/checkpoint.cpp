#include "ckpt/checkpoint.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ckpt/atomic_file.h"
#include "ckpt/crc32.h"
#include "common/env.h"
#include "common/fault.h"

namespace quanta::ckpt {

namespace internal {

namespace {

/// RAII FILE* that also unlinks the path unless release()d — the temp file
/// never survives a failed save.
class TempFile {
 public:
  TempFile(std::string path) : path_(std::move(path)) {
    f_ = std::fopen(path_.c_str(), "wb");
  }
  ~TempFile() {
    if (f_ != nullptr) std::fclose(f_);
    if (!released_ && !path_.empty()) std::remove(path_.c_str());
  }
  std::FILE* get() { return f_; }
  /// Closes (flushing) and keeps the file; returns false if the flush fails.
  bool close_keep() {
    if (f_ == nullptr) return false;
    const bool ok = std::fclose(f_) == 0;
    f_ = nullptr;
    released_ = ok;
    return ok;
  }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  bool released_ = false;
};

}  // namespace

bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& buf,
                       const char* fault_site) {
  const std::string tmp = path + ".tmp";
  try {
    TempFile file(tmp);
    if (file.get() == nullptr) return false;
    // Two half-writes around the fault-injection site model a crash
    // mid-write: the torn prefix only ever lands in the temp file, which is
    // removed (or, after SIGKILL, ignored — it is never renamed into place).
    const std::size_t half = buf.size() / 2;
    if (std::fwrite(buf.data(), 1, half, file.get()) != half) return false;
    common::FaultInjector::site(fault_site);
    const std::size_t rest = buf.size() - half;
    if (rest > 0 &&
        std::fwrite(buf.data() + half, 1, rest, file.get()) != rest) {
      return false;
    }
    if (!file.close_keep()) return false;
  } catch (...) {
    // Injected fault (or allocation failure) mid-write: TempFile already
    // removed the torn temp; the previous file at `path` is intact.
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

ReadFile read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  try {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return errno == ENOENT ? ReadFile::kNoFile : ReadFile::kIoError;
    }
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      out->insert(out->end(), chunk, chunk + n);
    }
    const bool read_ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!read_ok) return ReadFile::kIoError;
  } catch (...) {
    return ReadFile::kIoError;
  }
  return ReadFile::kOk;
}

}  // namespace internal

namespace {

constexpr char kMagic[8] = {'Q', 'C', 'K', 'P', 'T', '1', '\r', '\n'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 4 + 4;

}  // namespace

const char* to_string(LoadStatus s) {
  switch (s) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kNoFile: return "no-file";
    case LoadStatus::kIoError: return "io-error";
    case LoadStatus::kBadMagic: return "bad-magic";
    case LoadStatus::kBadVersion: return "bad-version";
    case LoadStatus::kBadProvider: return "bad-provider";
    case LoadStatus::kBadFingerprint: return "bad-fingerprint";
    case LoadStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

std::uint64_t Options::effective_interval() const {
  // Strict QUANTA_JOBS-style parsing (common::env_u64): the whole string must
  // be a positive decimal number — "12abc", "1e3", "-5", "0" and "" all fall
  // back to the programmatic interval rather than silently disabling or
  // misreading the cadence.
  if (const auto v = common::env_u64("QUANTA_CKPT_INTERVAL", kMaxInterval)) {
    return *v;
  }
  return interval;
}

const Section* Snapshot::find(std::uint32_t id) const {
  for (const Section& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Fingerprint& Fingerprint::mix_f64(double v) {
  return mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix_str(const std::string& s) {
  mix(s.size());
  for (char c : s) {
    h_ ^= static_cast<std::uint8_t>(c);
    h_ *= 0x100000001B3ull;
  }
  return *this;
}

Fingerprint& Fingerprint::mix_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001B3ull;
  }
  return *this;
}

bool save(const std::string& path, const Snapshot& snap) {
  if (path.empty()) return false;
  // Serialize the whole file into memory first: the on-disk write is then
  // two plain fwrite calls with nothing data-dependent between them.
  io::Writer w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(snap.provider));
  w.u64(snap.fingerprint);
  w.u32(static_cast<std::uint32_t>(snap.sections.size()));
  w.u32(crc32(w.buffer().data(), w.size()));
  for (const Section& s : snap.sections) {
    w.u32(s.id);
    w.u64(s.payload.size());
    w.u32(crc32(s.payload.data(), s.payload.size()));
    w.bytes(s.payload.data(), s.payload.size());
  }
  return internal::write_file_atomic(path, w.buffer(), "ckpt.file.write");
}

LoadStatus load(const std::string& path, std::uint64_t expected_fingerprint,
                Provider expected_provider, Snapshot* out) {
  if (path.empty()) return LoadStatus::kNoFile;
  std::vector<std::uint8_t> buf;
  try {
    common::FaultInjector::site("ckpt.file.read");
    switch (internal::read_file(path, &buf)) {
      case internal::ReadFile::kNoFile: return LoadStatus::kNoFile;
      case internal::ReadFile::kIoError: return LoadStatus::kIoError;
      case internal::ReadFile::kOk: break;
    }
  } catch (...) {
    return LoadStatus::kIoError;
  }

  if (buf.size() < kHeaderSize) return LoadStatus::kCorrupt;
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return LoadStatus::kBadMagic;
  }
  const std::uint32_t computed_header_crc = crc32(buf.data(), kHeaderSize - 4);
  io::Reader r(buf.data() + sizeof(kMagic), buf.size() - sizeof(kMagic));
  const std::uint32_t version = r.u32();
  const std::uint32_t provider = r.u32();
  const std::uint64_t fingerprint = r.u64();
  const std::uint32_t section_count = r.u32();
  const std::uint32_t header_crc = r.u32();
  if (header_crc != computed_header_crc) return LoadStatus::kCorrupt;
  if (version != kFormatVersion) return LoadStatus::kBadVersion;
  if (provider != static_cast<std::uint32_t>(expected_provider)) {
    return LoadStatus::kBadProvider;
  }
  if (fingerprint != expected_fingerprint) return LoadStatus::kBadFingerprint;

  Snapshot snap;
  snap.provider = expected_provider;
  snap.fingerprint = fingerprint;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint32_t payload_crc = r.u32();
    if (!r.ok() || !r.fits(size, 1)) return LoadStatus::kCorrupt;
    Section sec;
    sec.id = id;
    sec.payload.resize(static_cast<std::size_t>(size));
    if (!r.bytes(sec.payload.data(), sec.payload.size())) {
      return LoadStatus::kCorrupt;
    }
    if (crc32(sec.payload.data(), sec.payload.size()) != payload_crc) {
      return LoadStatus::kCorrupt;
    }
    snap.sections.push_back(std::move(sec));
  }
  if (!r.ok()) return LoadStatus::kCorrupt;
  *out = std::move(snap);
  return LoadStatus::kOk;
}

}  // namespace quanta::ckpt
