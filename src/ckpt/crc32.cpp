#include "ckpt/crc32.h"

#include <array>

namespace quanta::ckpt {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace quanta::ckpt
