// Incremental delta snapshots: the QCKPD1 record and the checkpoint chain.
//
// A full (base) snapshot of a store-based engine rewrites every interned
// state at every periodic save — 6.45x wall-clock at tight intervals
// (EXPERIMENTS.md). Exploration state is almost append-only, so a periodic
// checkpoint only needs what changed since the last save: the appended
// store entries, the covered/tombstone bits that flipped, the worklist
// delta and the engine payload suffix. Those ride in a QCKPD1 delta record;
// the checkpoint then consists of the base snapshot at <path> plus delta
// files <path>.d1, <path>.d2, ... forming a chain.
//
// Delta file layout (little-endian, DESIGN.md "Delta records"):
//
//   [magic "QCKPD1\r\n" 8B] [format u32] [provider u32] [fingerprint u64]
//   [parent id u64] [seq u32] [section count u32] [header crc32 u32]
//   then per section, exactly as in a base snapshot:
//   [section id u32] [payload size u64] [payload crc32 u32] [payload bytes]
//
// Chain integrity — the "base-snapshot id" that links records:
//   * the base snapshot's chain id is an FNV-1a hash of its full content;
//   * delta k stores the chain id of its predecessor (the base for k = 1)
//     in `parent id`, and its own chain id is FNV(parent id, content);
//   * the loader replays base + d1 + d2 + ... validating every link; a
//     *missing* delta file is the clean end of the chain, but any delta
//     that exists and fails validation (CRC, magic, fingerprint, parent id,
//     sequence number) is a broken link and the whole chain is refused —
//     the engine degrades to a fresh start, never resumes mixed state.
//
// Crash safety of the writer (ChainWriter):
//   * every file — base and delta alike — is written temp-then-rename, so a
//     SIGKILL mid-write leaves at most a stray temp and the chain ends at
//     the previous, fully validated link;
//   * compaction (a new base after Options::max_deltas deltas) removes the
//     old delta files in DESCENDING order before renaming the new base into
//     place, so every intermediate crash state is either the old chain, a
//     contiguous prefix of it, or the fresh base with no deltas — never a
//     new base with stale deltas (the parent id would refuse them anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace quanta::ckpt {

/// Format version of the QCKPD1 delta record, bumped independently of the
/// base snapshot format.
inline constexpr std::uint32_t kDeltaFormatVersion = 1;

/// One incremental delta record: the changes since the predecessor link.
struct Delta {
  Provider provider = Provider::kExplore;
  std::uint64_t fingerprint = 0;  ///< model/query fp, same as the base
  std::uint64_t parent_id = 0;    ///< chain id of the predecessor link
  std::uint32_t seq = 0;          ///< 1-based position in the chain
  std::vector<Section> sections;

  void add_section(std::uint32_t id, io::Writer&& w) {
    sections.push_back(Section{id, w.take()});
  }
  const Section* find(std::uint32_t id) const;
};

/// Path of the seq-th delta file of the chain rooted at `base_path`.
std::string delta_path(const std::string& base_path, std::uint32_t seq);

/// Content hash of a base snapshot — the chain id deltas link against.
std::uint64_t chain_id(const Snapshot& base);
/// Chain id of a delta given its predecessor's id.
std::uint64_t chain_id(std::uint64_t parent_id, const Delta& d);

/// Atomically writes the delta record to delta_path(base_path, d.seq).
/// Returns false on any I/O failure (the chain keeps its previous tip).
/// Visits FaultInjector site "ckpt.delta.write".
bool save_delta(const std::string& base_path, const Delta& d);

/// A validated checkpoint chain, ready to replay: the base snapshot plus
/// zero or more deltas in sequence order.
struct Chain {
  Snapshot base;
  std::vector<Delta> deltas;
  /// Chain id of the last link — a ChainWriter adopts this to append.
  std::uint64_t tip_id = 0;
};

/// Loads and validates the whole chain at `path`. kOk means the base and
/// every contiguous delta validated (a missing delta file ends the chain
/// cleanly); any delta that exists but fails validation — bad CRC or magic,
/// wrong provider/fingerprint/format, a parent id that does not match the
/// predecessor, an out-of-order sequence number — poisons the entire chain
/// (kCorrupt or the specific status), so the caller starts fresh. Visits
/// FaultInjector sites "ckpt.file.read" (base) and "ckpt.delta.apply"
/// (per delta).
LoadStatus load_chain(const std::string& path, std::uint64_t fingerprint,
                      Provider provider, Chain* out);

/// Removes delta files starting at `from_seq`, highest sequence first, so a
/// crash mid-removal always leaves a contiguous chain prefix.
void remove_deltas(const std::string& base_path, std::uint32_t from_seq = 1);

/// Removes the entire checkpoint chain at `base_path`: every delta
/// (descending), the base snapshot, and any stray temp files. Used when a
/// resume token is claimed to completion or the chain's TTL expires.
void remove_chain(const std::string& base_path);

/// Append/compact policy shared by the delta-snapshotting providers. One
/// ChainWriter lives for the duration of an engine run; the engine asks
/// want_base() before each periodic save and serializes either a full
/// snapshot or just the changes since the last successful save.
class ChainWriter {
 public:
  ChainWriter(std::string path, Provider provider, std::uint64_t fingerprint,
              std::uint32_t max_deltas)
      : path_(std::move(path)),
        provider_(provider),
        fingerprint_(fingerprint),
        max_deltas_(max_deltas) {}

  /// Continue a freshly loaded chain instead of starting a new one.
  void adopt(const Chain& chain) {
    base_written_ = true;
    next_seq_ = static_cast<std::uint32_t>(chain.deltas.size()) + 1;
    tip_id_ = chain.tip_id;
  }

  /// True when the next save must be a full base snapshot: nothing written
  /// yet, deltas disabled (max_deltas == 0), or the chain is due for
  /// compaction.
  bool want_base() const {
    return !base_written_ || max_deltas_ == 0 || next_seq_ > max_deltas_;
  }

  /// Writes a full base snapshot, retiring any existing delta chain (old
  /// deltas are removed descending before the base is renamed into place).
  bool save_base(Snapshot&& snap);

  /// Appends a delta with the given sections to the chain tip. Only valid
  /// when !want_base().
  bool save_delta_link(std::vector<Section>&& sections);

 private:
  std::string path_;
  Provider provider_;
  std::uint64_t fingerprint_ = 0;
  std::uint32_t max_deltas_ = 0;
  bool base_written_ = false;
  std::uint32_t next_seq_ = 1;
  std::uint64_t tip_id_ = 0;
};

}  // namespace quanta::ckpt
