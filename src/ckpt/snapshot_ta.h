// Zone-state codec and timed-automata model fingerprint for the checkpoint
// subsystem. Header-only: included by the engines that link both quanta_ta
// and quanta_ckpt (mc reachability today; any zone-based engine can reuse
// it), keeping the ckpt library itself free of model dependencies.
#pragma once

#include <cstdint>

#include "ckpt/checkpoint.h"
#include "ckpt/io.h"
#include "dbm/dbm.h"
#include "ta/digital.h"
#include "ta/model.h"
#include "ta/symbolic.h"

namespace quanta::ckpt {

inline void write_sym_state(io::Writer& w, const ta::SymState& s) {
  w.u32(static_cast<std::uint32_t>(s.locs.size()));
  for (int l : s.locs) w.i32(l);
  w.u32(static_cast<std::uint32_t>(s.vars.size()));
  for (auto v : s.vars) w.i32(v);
  const int dim = s.zone.dim();
  w.u32(static_cast<std::uint32_t>(dim));
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) w.i32(s.zone.at(i, j));
  }
}

inline bool read_sym_state(io::Reader& r, ta::SymState* out) {
  const std::uint32_t nl = r.u32();
  if (!r.fits(nl, 4)) return false;
  out->locs.resize(nl);
  for (std::uint32_t i = 0; i < nl; ++i) out->locs[i] = r.i32();
  const std::uint32_t nv = r.u32();
  if (!r.fits(nv, 4)) return false;
  out->vars.resize(nv);
  for (std::uint32_t i = 0; i < nv; ++i) out->vars[i] = r.i32();
  const std::uint32_t dim = r.u32();
  if (dim == 0 || !r.fits(static_cast<std::uint64_t>(dim) * dim, 4)) {
    return false;
  }
  out->zone = dbm::Dbm(static_cast<int>(dim));
  for (std::uint32_t i = 0; i < dim; ++i) {
    for (std::uint32_t j = 0; j < dim; ++j) {
      out->zone.set(static_cast<int>(i), static_cast<int>(j), r.i32());
    }
  }
  return r.ok();
}

inline void write_digital_state(io::Writer& w, const ta::DigitalState& s) {
  w.u32(static_cast<std::uint32_t>(s.locs.size()));
  for (int l : s.locs) w.i32(l);
  w.u32(static_cast<std::uint32_t>(s.vars.size()));
  for (auto v : s.vars) w.i32(v);
  w.u32(static_cast<std::uint32_t>(s.clocks.size()));
  for (std::int32_t c : s.clocks) w.i32(c);
}

inline bool read_digital_state(io::Reader& r, ta::DigitalState* out) {
  const std::uint32_t nl = r.u32();
  if (!r.fits(nl, 4)) return false;
  out->locs.resize(nl);
  for (std::uint32_t i = 0; i < nl; ++i) out->locs[i] = r.i32();
  const std::uint32_t nv = r.u32();
  if (!r.fits(nv, 4)) return false;
  out->vars.resize(nv);
  for (std::uint32_t i = 0; i < nv; ++i) out->vars[i] = r.i32();
  const std::uint32_t nc = r.u32();
  if (!r.fits(nc, 4)) return false;
  out->clocks.resize(nc);
  for (std::uint32_t i = 0; i < nc; ++i) out->clocks[i] = r.i32();
  return r.ok();
}

inline void write_move(io::Writer& w, const ta::Move& m) {
  w.u32(static_cast<std::uint32_t>(m.participants.size()));
  for (const auto& [process, edge] : m.participants) {
    w.i32(process);
    w.i32(edge);
  }
}

inline bool read_move(io::Reader& r, ta::Move* out) {
  const std::uint32_t n = r.u32();
  if (!r.fits(n, 8)) return false;
  out->participants.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out->participants[i].first = r.i32();
    out->participants[i].second = r.i32();
  }
  return r.ok();
}

/// Structural fingerprint of a timed-automata network: locations (names,
/// invariants, flags, rates), edges (endpoints, clock guards, channels,
/// sync, resets, probabilistic branches), channels, clocks and variable
/// declarations. Opaque callables (data guards/updates, channel functions)
/// contribute only their presence bit — analyses that differ solely inside
/// such callables must be distinguished through the query predicate's
/// canonical form (common::Predicate, e.g. via labeled_pred).
inline std::uint64_t fingerprint(const ta::System& sys) {
  Fingerprint fp;
  fp.mix(0x7A5EED00u).mix(static_cast<std::uint64_t>(sys.clock_count()));
  for (int c = 1; c <= sys.clock_count(); ++c) fp.mix_str(sys.clock_name(c));
  fp.mix(static_cast<std::uint64_t>(sys.channel_count()));
  for (int c = 0; c < sys.channel_count(); ++c) {
    const ta::Channel& ch = sys.channel(c);
    fp.mix_str(ch.name).mix((ch.broadcast ? 2u : 0u) | (ch.urgent ? 1u : 0u));
  }
  const auto& vars = sys.vars();
  fp.mix(vars.size());
  for (const common::VarDecl& d : vars.decls()) {
    fp.mix_str(d.name)
        .mix_i64(d.init)
        .mix_i64(d.min)
        .mix_i64(d.max);
  }
  auto mix_constraints = [&fp](const std::vector<ta::ClockConstraint>& cs) {
    fp.mix(cs.size());
    for (const ta::ClockConstraint& cc : cs) {
      fp.mix_i64(cc.i).mix_i64(cc.j).mix_i64(cc.bound);
    }
  };
  fp.mix(static_cast<std::uint64_t>(sys.process_count()));
  for (int p = 0; p < sys.process_count(); ++p) {
    const ta::Process& proc = sys.process(p);
    fp.mix_str(proc.name).mix_i64(proc.initial);
    fp.mix(proc.locations.size());
    for (const ta::Location& loc : proc.locations) {
      fp.mix_str(loc.name);
      mix_constraints(loc.invariant);
      fp.mix((loc.committed ? 2u : 0u) | (loc.urgent ? 1u : 0u));
      fp.mix_f64(loc.exit_rate);
    }
    fp.mix(proc.edges.size());
    for (const ta::Edge& e : proc.edges) {
      fp.mix_i64(e.source).mix_i64(e.target);
      mix_constraints(e.guard);
      fp.mix_i64(e.channel)
          .mix(e.channel_fn ? 1u : 0u)
          .mix(static_cast<std::uint64_t>(e.sync))
          .mix(e.data_guard ? 1u : 0u)
          .mix(e.update ? 1u : 0u)
          .mix(e.controllable ? 1u : 0u);
      fp.mix_str(e.label);
      fp.mix(e.resets.size());
      for (const auto& [clock, value] : e.resets) {
        fp.mix_i64(clock).mix_i64(value);
      }
      fp.mix(e.branches.size());
      for (const ta::ProbBranch& b : e.branches) {
        fp.mix_f64(b.weight).mix_i64(b.target).mix_str(b.label);
        fp.mix(b.resets.size());
        for (const auto& [clock, value] : b.resets) {
          fp.mix_i64(clock).mix_i64(value);
        }
      }
    }
  }
  return fp.digest();
}

}  // namespace quanta::ckpt
