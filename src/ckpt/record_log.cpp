#include "ckpt/record_log.h"

#include <cstring>

#include "ckpt/atomic_file.h"
#include "ckpt/crc32.h"
#include "ckpt/io.h"

namespace quanta::ckpt {
namespace {

constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kHeaderBytes = kMagicBytes + 4 + 4;
constexpr std::size_t kFrameBytes = 4 + 4;  // [len u32][crc u32]

void write_header(io::Writer* w, const LogFormat& fmt) {
  w->bytes(fmt.magic, kMagicBytes);
  w->u32(fmt.version);
  w->u32(crc32(w->buffer().data(), kMagicBytes + 4));
}

/// nullptr when the header matches `fmt`, else the reason it does not.
const char* check_header(const std::uint8_t* data, std::size_t size,
                         const LogFormat& fmt) {
  if (size < kHeaderBytes) return "short header";
  if (std::memcmp(data, fmt.magic, kMagicBytes) != 0) return "bad magic";
  io::Reader r(data + kMagicBytes, 8);
  const std::uint32_t version = r.u32();
  const std::uint32_t stored_crc = r.u32();
  if (stored_crc != crc32(data, kMagicBytes + 4)) return "header CRC mismatch";
  if (version != fmt.version) return "format version mismatch";
  return nullptr;
}

void frame_record(io::Writer* w, const std::vector<std::uint8_t>& payload) {
  w->u32(static_cast<std::uint32_t>(payload.size()));
  w->u32(crc32(payload.data(), payload.size()));
  w->bytes(payload.data(), payload.size());
}

}  // namespace

LogScanStats scan_log(const std::string& path, const LogFormat& fmt,
                      std::vector<std::vector<std::uint8_t>>* records) {
  LogScanStats stats;
  std::vector<std::uint8_t> buf;
  switch (internal::read_file(path, &buf)) {
    case internal::ReadFile::kOk:
      break;
    case internal::ReadFile::kNoFile:
      stats.fresh = true;
      stats.note = "no log file";
      return stats;
    case internal::ReadFile::kIoError:
      stats.fresh = true;
      stats.note = "log unreadable";
      return stats;
  }
  if (const char* why = check_header(buf.data(), buf.size(), fmt)) {
    stats.fresh = true;
    stats.note = why;
    return stats;
  }
  std::size_t off = kHeaderBytes;
  while (off < buf.size()) {
    if (buf.size() - off < kFrameBytes) {
      stats.torn_tail = true;  // partial frame header: append died mid-write
      break;
    }
    io::Reader r(buf.data() + off, kFrameBytes);
    const std::uint32_t len = r.u32();
    const std::uint32_t stored_crc = r.u32();
    if (len > kMaxLogRecordBytes || buf.size() - off - kFrameBytes < len) {
      // A length this implausible (or reaching past EOF) means the frame
      // itself is torn; resynchronizing is impossible, so stop here.
      stats.torn_tail = true;
      break;
    }
    const std::uint8_t* payload = buf.data() + off + kFrameBytes;
    off += kFrameBytes + len;
    if (stored_crc != crc32(payload, len)) {
      ++stats.dropped;  // bit-flip inside one record: skip it, keep the rest
      continue;
    }
    if (records != nullptr) records->emplace_back(payload, payload + len);
    ++stats.records;
  }
  if (stats.torn_tail) {
    stats.note = stats.note.empty() ? "torn tail discarded" : stats.note;
  }
  if (stats.dropped > 0 && stats.note.empty()) {
    stats.note = "corrupt records dropped";
  }
  return stats;
}

bool rewrite_log(const std::string& path, const LogFormat& fmt,
                 const std::vector<std::vector<std::uint8_t>>& records,
                 const char* fault_site) {
  io::Writer w;
  write_header(&w, fmt);
  for (const auto& payload : records) frame_record(&w, payload);
  return internal::write_file_atomic(path, w.buffer(), fault_site);
}

bool RecordLog::open(const std::string& path, const LogFormat& fmt,
                     std::string* error) {
  close();
  // Validate any existing header first: appending records behind a foreign
  // or torn header would make them unrecoverable on the next scan.
  std::vector<std::uint8_t> existing;
  const bool header_ok =
      internal::read_file(path, &existing) == internal::ReadFile::kOk &&
      check_header(existing.data(), existing.size(), fmt) == nullptr;
  f_ = std::fopen(path.c_str(), header_ok ? "ab" : "wb");
  if (f_ == nullptr) {
    if (error != nullptr) *error = "cannot open log " + path;
    return false;
  }
  if (!header_ok) {
    io::Writer w;
    write_header(&w, fmt);
    if (std::fwrite(w.buffer().data(), 1, w.size(), f_) != w.size() ||
        std::fflush(f_) != 0) {
      close();
      if (error != nullptr) *error = "cannot write log header " + path;
      return false;
    }
  }
  appended_bytes_ = 0;
  return true;
}

void RecordLog::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool RecordLog::append(const std::vector<std::uint8_t>& payload) {
  if (f_ == nullptr || payload.size() > kMaxLogRecordBytes) return false;
  io::Writer w;
  frame_record(&w, payload);
  if (std::fwrite(w.buffer().data(), 1, w.size(), f_) != w.size() ||
      std::fflush(f_) != 0) {
    close();  // sticky failure: no further appends against a sick stream
    return false;
  }
  appended_bytes_ += w.size();
  return true;
}

}  // namespace quanta::ckpt
