// Crash-safe checkpoint files: the warm-restart substrate of the resource
// governance layer. When a common::Budget stops an analysis (deadline,
// memory ceiling, cancellation) — or periodically, so even a SIGKILL loses
// at most one snapshot interval — the engine serializes its resumable state
// into a snapshot and writes it atomically; the follow-up invocation
// validates and loads it, continuing exactly where the interrupted run
// stopped with bit-identical final verdicts and statistics.
//
// File layout (all integers little-endian, DESIGN.md "Checkpoint format"):
//
//   [magic "QCKPT1\r\n" 8B] [format u32] [provider u32] [fingerprint u64]
//   [section count u32] [header crc32 u32]
//   then per section:
//   [section id u32] [payload size u64] [payload crc32 u32] [payload bytes]
//
// Safety properties:
//   * atomic visibility — save() writes <path>.tmp and rename()s it over
//     <path>, so a crash mid-write leaves either the previous checkpoint or
//     a stray temp file, never a torn file at <path> that parses;
//   * validated resume — load() checks magic, format version, model
//     fingerprint, provider and every section CRC; any mismatch degrades to
//     a fresh start (LoadStatus says why), never a crash and never an
//     engine resumed from tainted state;
//   * no exceptions — save() reports failure by returning false (the run's
//     verdict is unaffected), load() by LoadStatus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.h"

namespace quanta::ckpt {

/// Bumped whenever the byte layout of the header or any provider section
/// changes; a checkpoint from another format version is never parsed.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Which snapshot provider wrote a checkpoint. A checkpoint is only resumed
/// by the provider that produced it.
enum class Provider : std::uint32_t {
  kExplore = 1,         ///< core::explore store/worklist/payload snapshot
  kValueIteration = 2,  ///< mdp/pta value vectors + sweep index
  kStatistical = 3,     ///< smc/mbt completed-run prefix + statistics
  kLiveness = 4,        ///< mc leads-to zone graph + successor lists
  kGame = 5,            ///< timed-game graph + attractor fixpoint state
  kPriced = 6,          ///< CORA min-cost search (priority worklist + costs)
  kSprt = 7,            ///< SPRT in-order LLR walk position
};

/// Outcome of a resume attempt. Everything except kOk means "start fresh";
/// the distinction is purely diagnostic.
enum class LoadStatus {
  kOk,              ///< snapshot validated and parsed
  kNoFile,          ///< nothing at the path (first run)
  kIoError,         ///< open/read failed (permissions, injected fault)
  kBadMagic,        ///< not a checkpoint file
  kBadVersion,      ///< incompatible format version
  kBadProvider,     ///< written by a different snapshot provider
  kBadFingerprint,  ///< model/query fingerprint mismatch
  kCorrupt,         ///< truncated file or section CRC mismatch
};

const char* to_string(LoadStatus s);

struct Section {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> payload;
};

struct Snapshot {
  Provider provider = Provider::kExplore;
  std::uint64_t fingerprint = 0;
  std::vector<Section> sections;

  void add_section(std::uint32_t id, io::Writer&& w) {
    sections.push_back(Section{id, w.take()});
  }
  /// nullptr when the snapshot has no such section.
  const Section* find(std::uint32_t id) const;
};

/// Serializes and atomically replaces `path` (write <path>.tmp, rename).
/// Returns false on any I/O failure — the previous checkpoint, if any, is
/// left untouched. Visits FaultInjector site "ckpt.file.write".
bool save(const std::string& path, const Snapshot& snap);

/// Validates and parses `path`. On anything but kOk, `out` is left
/// untouched. Visits FaultInjector site "ckpt.file.read".
LoadStatus load(const std::string& path, std::uint64_t expected_fingerprint,
                Provider expected_provider, Snapshot* out);

/// FNV-1a accumulator for model/query fingerprints. Engines mix every
/// structural feature of the model, the canonical serialization of the
/// query predicate AST (common::Predicate::canonical) and the analysis
/// parameters that affect the computation, so a checkpoint is only ever
/// resumed against the same (model, query) pair. Closures that bypass the
/// structural builders canonicalize as an indistinct "opaque" leaf — wrap
/// them in labeled_pred when one path serves several such queries.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= 0x100000001B3ull;
    }
    return *this;
  }
  Fingerprint& mix_i64(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix_f64(double v);
  Fingerprint& mix_str(const std::string& s);
  Fingerprint& mix_bytes(const void* data, std::size_t size);

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

/// Engine-facing checkpoint policy, embedded in each governed entry point's
/// options (mc::ReachOptions, mdp::ViOptions, the smc estimate API).
struct Options {
  /// Checkpoint file; empty disables checkpointing entirely.
  std::string path;
  /// Attempt to resume from `path` before starting (a failed attempt — no
  /// file, corruption, fingerprint mismatch — degrades to a fresh start).
  bool resume = true;
  /// Write a snapshot when a resource bound stops the run, so the verdict's
  /// kUnknown carries a warm-restart artifact.
  bool save_on_stop = true;
  /// Periodic snapshot cadence in the engine's own progress unit (explored
  /// states for core::explore, sweeps for value iteration, completed runs
  /// for the statistical engines); 0 = snapshot only on stop. Periodic
  /// snapshots are what make an outright SIGKILL resumable. The
  /// QUANTA_CKPT_INTERVAL environment variable, when it parses as a whole
  /// positive decimal, overrides this value (effective_interval()).
  std::uint64_t interval = 0;
  /// Periodic snapshots of the store-based providers append incremental
  /// QCKPD1 delta records (src/ckpt/delta.h) instead of rewriting the full
  /// base snapshot; after this many deltas the chain is compacted into a
  /// fresh base. 0 disables deltas (every periodic snapshot is a full base).
  std::uint32_t max_deltas = 64;

  bool enabled() const { return !path.empty(); }

  /// `interval`, unless QUANTA_CKPT_INTERVAL holds a valid override — the
  /// same strict rules as QUANTA_JOBS: whole positive decimals only,
  /// clamped to kMaxInterval; garbage/empty/zero falls back to `interval`.
  std::uint64_t effective_interval() const;

  /// Upper clamp of the QUANTA_CKPT_INTERVAL override.
  static constexpr std::uint64_t kMaxInterval = 1'000'000'000'000ull;
};

/// How checkpointing went for one analysis run; carried by the engine's
/// result next to the verdict (the "resume handle" of a kUnknown verdict:
/// `saved` says the path now holds a snapshot the next invocation picks up).
struct ResumeInfo {
  /// Result of the resume attempt at the start of the run.
  LoadStatus load = LoadStatus::kNoFile;
  /// The run continued from a validated snapshot (load == kOk).
  bool resumed = false;
  /// A snapshot was written (periodically or when the run stopped) and is
  /// valid at `path`.
  bool saved = false;
  std::string path;
};

}  // namespace quanta::ckpt
