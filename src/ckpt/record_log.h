// Append-only CRC-framed record logs — the shared on-disk discipline of the
// service's write-ahead job journal and result-cache segment (src/svc).
//
// File layout (all integers little-endian, DESIGN.md "Durable daemon
// state"):
//
//   [magic 8B] [format version u32] [header crc32 u32]
//   then per record:
//   [payload size u32] [payload crc32 u32] [payload bytes]
//
// Safety properties, mirroring src/ckpt's snapshot rules:
//   * a record only counts when its stored and recomputed CRC32 agree — a
//     bit-flipped record is skipped (its intact length field keeps the
//     stream in sync), never parsed;
//   * a trailing partial record (SIGKILL mid-append) is discarded as a torn
//     tail: everything before it survives;
//   * a missing file, foreign magic or mismatched format version degrades
//     to "start fresh" — scan_log never throws and never fails a boot;
//   * rewrite_log (compaction) goes through the atomic temp-then-rename
//     path of ckpt::internal::write_file_atomic, so a crash mid-compaction
//     leaves the previous log intact.
//
// Appends are fwrite + fflush: they survive process death (SIGKILL) — the
// bytes are in the kernel — but not power loss; the daemon's durability
// target is crash/restart, not fsync-grade storage semantics.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace quanta::ckpt {

/// Identity stamp of one log file: exactly 8 magic bytes plus a format
/// version that gates every layout change of the caller's payloads.
struct LogFormat {
  const char* magic;  ///< exactly 8 bytes, e.g. "QJRNL1\r\n"
  std::uint32_t version = 1;
};

/// Per-record payload cap: a corrupted length field claiming more than this
/// marks the rest of the file torn instead of driving an allocation.
inline constexpr std::uint32_t kMaxLogRecordBytes = 16u << 20;

/// How a scan_log pass went. `fresh` means the caller starts with empty
/// state (no file, unreadable, foreign magic, version mismatch); `dropped`
/// counts CRC-mismatched records that were skipped in place.
struct LogScanStats {
  std::size_t records = 0;
  std::size_t dropped = 0;
  bool torn_tail = false;
  bool fresh = false;
  std::string note;  ///< human-readable reason when fresh / records dropped
};

/// Reads every valid record of `path` into *records (append order). Never
/// throws; any corruption degrades per the rules above.
LogScanStats scan_log(const std::string& path, const LogFormat& fmt,
                      std::vector<std::vector<std::uint8_t>>* records);

/// Atomically replaces `path` with a fresh header plus `records`
/// (compaction). False on any I/O failure — the previous file is left
/// untouched. `fault_site` is visited mid-write (see atomic_file.h).
bool rewrite_log(const std::string& path, const LogFormat& fmt,
                 const std::vector<std::vector<std::uint8_t>>& records,
                 const char* fault_site);

/// Append handle for one open log. open() validates (or creates) the
/// header; append() frames one payload and flushes it to the kernel.
/// Append failures are sticky: the caller degrades to in-memory operation
/// and the file keeps its last complete record.
class RecordLog {
 public:
  RecordLog() = default;
  ~RecordLog() { close(); }
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Opens `path` for appends, creating it (with a header) when missing.
  /// A file whose header fails validation is truncated and re-created —
  /// callers scan_log first, so nothing recoverable is lost here.
  bool open(const std::string& path, const LogFormat& fmt, std::string* error);
  bool is_open() const { return f_ != nullptr; }
  void close();

  /// Appends one framed record and flushes. False on any write failure
  /// (the log is closed; subsequent appends fail fast).
  bool append(const std::vector<std::uint8_t>& payload);

  /// Bytes appended through this handle since open() — drives the callers'
  /// amortized compaction triggers.
  std::uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t appended_bytes_ = 0;
};

}  // namespace quanta::ckpt
