#include "ckpt/delta.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "ckpt/atomic_file.h"
#include "ckpt/crc32.h"
#include "common/fault.h"

namespace quanta::ckpt {

namespace {

constexpr char kDeltaMagic[8] = {'Q', 'C', 'K', 'P', 'D', '1', '\r', '\n'};
constexpr std::size_t kDeltaHeaderSize = 8 + 4 + 4 + 8 + 8 + 4 + 4 + 4;

/// Content hash shared by both chain_id overloads: provider, fingerprint
/// and every section (id, size, payload) in order.
void mix_sections(Fingerprint& fp, Provider provider, std::uint64_t fingerprint,
                  const std::vector<Section>& sections) {
  fp.mix(static_cast<std::uint64_t>(provider));
  fp.mix(fingerprint);
  fp.mix(sections.size());
  for (const Section& s : sections) {
    fp.mix(s.id);
    fp.mix(s.payload.size());
    fp.mix_bytes(s.payload.data(), s.payload.size());
  }
}

}  // namespace

const Section* Delta::find(std::uint32_t id) const {
  for (const Section& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::string delta_path(const std::string& base_path, std::uint32_t seq) {
  return base_path + ".d" + std::to_string(seq);
}

std::uint64_t chain_id(const Snapshot& base) {
  Fingerprint fp;
  mix_sections(fp, base.provider, base.fingerprint, base.sections);
  return fp.digest();
}

std::uint64_t chain_id(std::uint64_t parent_id, const Delta& d) {
  Fingerprint fp;
  fp.mix(parent_id);
  fp.mix(d.seq);
  mix_sections(fp, d.provider, d.fingerprint, d.sections);
  return fp.digest();
}

bool save_delta(const std::string& base_path, const Delta& d) {
  if (base_path.empty() || d.seq == 0) return false;
  io::Writer w;
  w.bytes(kDeltaMagic, sizeof(kDeltaMagic));
  w.u32(kDeltaFormatVersion);
  w.u32(static_cast<std::uint32_t>(d.provider));
  w.u64(d.fingerprint);
  w.u64(d.parent_id);
  w.u32(d.seq);
  w.u32(static_cast<std::uint32_t>(d.sections.size()));
  w.u32(crc32(w.buffer().data(), w.size()));
  for (const Section& s : d.sections) {
    w.u32(s.id);
    w.u64(s.payload.size());
    w.u32(crc32(s.payload.data(), s.payload.size()));
    w.bytes(s.payload.data(), s.payload.size());
  }
  return internal::write_file_atomic(delta_path(base_path, d.seq), w.buffer(),
                                     "ckpt.delta.write");
}

namespace {

/// Parses and validates one delta file against its expected chain position.
/// kNoFile is the clean end of the chain; everything else poisons it.
LoadStatus load_one_delta(const std::string& path, std::uint64_t fingerprint,
                          Provider provider, std::uint64_t parent_id,
                          std::uint32_t seq, Delta* out) {
  std::vector<std::uint8_t> buf;
  try {
    common::FaultInjector::site("ckpt.delta.apply");
    switch (internal::read_file(path, &buf)) {
      case internal::ReadFile::kNoFile: return LoadStatus::kNoFile;
      case internal::ReadFile::kIoError: return LoadStatus::kIoError;
      case internal::ReadFile::kOk: break;
    }
  } catch (...) {
    return LoadStatus::kIoError;
  }

  if (buf.size() < kDeltaHeaderSize) return LoadStatus::kCorrupt;
  if (std::memcmp(buf.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return LoadStatus::kBadMagic;
  }
  const std::uint32_t computed_crc = crc32(buf.data(), kDeltaHeaderSize - 4);
  io::Reader r(buf.data() + sizeof(kDeltaMagic),
               buf.size() - sizeof(kDeltaMagic));
  const std::uint32_t version = r.u32();
  const std::uint32_t file_provider = r.u32();
  const std::uint64_t file_fingerprint = r.u64();
  const std::uint64_t file_parent = r.u64();
  const std::uint32_t file_seq = r.u32();
  const std::uint32_t section_count = r.u32();
  const std::uint32_t header_crc = r.u32();
  if (header_crc != computed_crc) return LoadStatus::kCorrupt;
  if (version != kDeltaFormatVersion) return LoadStatus::kBadVersion;
  if (file_provider != static_cast<std::uint32_t>(provider)) {
    return LoadStatus::kBadProvider;
  }
  if (file_fingerprint != fingerprint) return LoadStatus::kBadFingerprint;
  // The link check: a delta written against a different base (or a stale
  // delta left over from an interrupted compaction) has the wrong parent id
  // or sequence number and refuses to attach.
  if (file_parent != parent_id || file_seq != seq) return LoadStatus::kCorrupt;

  Delta d;
  d.provider = provider;
  d.fingerprint = fingerprint;
  d.parent_id = file_parent;
  d.seq = file_seq;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint32_t payload_crc = r.u32();
    if (!r.ok() || !r.fits(size, 1)) return LoadStatus::kCorrupt;
    Section sec;
    sec.id = id;
    sec.payload.resize(static_cast<std::size_t>(size));
    if (!r.bytes(sec.payload.data(), sec.payload.size())) {
      return LoadStatus::kCorrupt;
    }
    if (crc32(sec.payload.data(), sec.payload.size()) != payload_crc) {
      return LoadStatus::kCorrupt;
    }
    d.sections.push_back(std::move(sec));
  }
  if (!r.ok()) return LoadStatus::kCorrupt;
  *out = std::move(d);
  return LoadStatus::kOk;
}

}  // namespace

LoadStatus load_chain(const std::string& path, std::uint64_t fingerprint,
                      Provider provider, Chain* out) {
  Chain chain;
  const LoadStatus base_status =
      load(path, fingerprint, provider, &chain.base);
  if (base_status != LoadStatus::kOk) return base_status;
  chain.tip_id = chain_id(chain.base);

  for (std::uint32_t seq = 1;; ++seq) {
    Delta d;
    const LoadStatus s = load_one_delta(delta_path(path, seq), fingerprint,
                                        provider, chain.tip_id, seq, &d);
    if (s == LoadStatus::kNoFile) break;  // clean end of the chain
    if (s != LoadStatus::kOk) return s;   // broken link poisons everything
    chain.tip_id = chain_id(chain.tip_id, d);
    chain.deltas.push_back(std::move(d));
  }
  *out = std::move(chain);
  return LoadStatus::kOk;
}

void remove_deltas(const std::string& base_path, std::uint32_t from_seq) {
  if (base_path.empty()) return;
  if (from_seq == 0) from_seq = 1;
  // Find the contiguous top of the chain first, then remove descending: a
  // crash mid-removal always leaves a contiguous prefix (which the parent-id
  // check happily replays) rather than a gap followed by stale deltas.
  std::uint32_t top = from_seq - 1;
  for (std::uint32_t seq = from_seq;; ++seq) {
    std::FILE* f = std::fopen(delta_path(base_path, seq).c_str(), "rb");
    if (f == nullptr) break;
    std::fclose(f);
    top = seq;
  }
  for (std::uint32_t seq = top; seq >= from_seq; --seq) {
    std::remove(delta_path(base_path, seq).c_str());
    std::remove((delta_path(base_path, seq) + ".tmp").c_str());
    if (seq == from_seq) break;  // the loop guard alone would wrap at 0
  }
}

void remove_chain(const std::string& base_path) {
  if (base_path.empty()) return;
  // Deltas first (descending): any interruption leaves a loadable prefix,
  // never a headless tail.
  remove_deltas(base_path);
  std::remove(base_path.c_str());
  std::remove((base_path + ".tmp").c_str());
}

bool ChainWriter::save_base(Snapshot&& snap) {
  snap.provider = provider_;
  snap.fingerprint = fingerprint_;
  // Old deltas go first (descending, inside remove_deltas), so no crash
  // window ever shows the new base next to deltas of the old chain.
  remove_deltas(path_);
  const std::uint64_t id = chain_id(snap);
  if (!ckpt::save(path_, snap)) {
    // The old base may have survived (rename never happened) or not; either
    // way the next periodic save must retry a full base.
    base_written_ = false;
    return false;
  }
  base_written_ = true;
  next_seq_ = 1;
  tip_id_ = id;
  return true;
}

bool ChainWriter::save_delta_link(std::vector<Section>&& sections) {
  if (want_base()) return false;
  Delta d;
  d.provider = provider_;
  d.fingerprint = fingerprint_;
  d.parent_id = tip_id_;
  d.seq = next_seq_;
  d.sections = std::move(sections);
  if (!save_delta(path_, d)) return false;  // tip unchanged; caller retries
  tip_id_ = chain_id(tip_id_, d);
  ++next_seq_;
  return true;
}

}  // namespace quanta::ckpt
