// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges —
// the per-section integrity check of the checkpoint format. A flipped bit
// anywhere in a section payload makes the stored and recomputed checksums
// disagree, so a corrupted checkpoint is rejected at load instead of being
// parsed into tainted engine state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace quanta::ckpt {

/// Incremental CRC32: feed `crc32_update` successive chunks starting from
/// `kCrc32Init`, finish with `crc32_final`. One-shot helper below.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size);

inline std::uint32_t crc32_final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// CRC32 of one contiguous buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(kCrc32Init, data, size));
}

}  // namespace quanta::ckpt
